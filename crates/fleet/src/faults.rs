//! Deterministic fault injection and retry policy for the journal write
//! path.
//!
//! The paper's trust argument assumes the metering evidence survives the
//! meterer; this module makes sure the *meterer survives the disk*. A
//! [`FaultInjectingSink`] wraps any [`JournalSink`] with a seeded,
//! line-addressed [`FaultSchedule`] so every disk failure mode the
//! pipeline must tolerate — a transient `EIO`, a permanently failed
//! device, a full disk, a torn mid-line write, a crash point — is
//! *reproducible*: the same schedule over the same workload injects the
//! same fault at the same byte, in tests, in the benchmark and in
//! `examples/fleet_faults.rs`.
//!
//! The consumer side is [`RetryPolicy`]: a seeded-deterministic bounded
//! exponential backoff (in *virtual ticks*, never wall-clock sleeps) the
//! ingest pipeline runs journal commits under. Transient faults are
//! retried and absorbed; on exhaustion the pipeline enters **quarantine**
//! (see [`crate::ingest::FleetIngest`]): releases stop — preserving the
//! never-journaled ⇒ never-billed invariant — until the service fails
//! over to a fresh sink with
//! [`crate::ingest::FleetIngest::resume_with_sink`].
//!
//! ## Fault semantics
//!
//! Faults are addressed by *committed line index*: a fault `at_line: k`
//! fires on the first commit that would contain line `k` (0-based over
//! the sink's lifetime). What happens next depends on the kind:
//!
//! * [`FaultKind::Transient`] — the commit fails with
//!   [`JournalError::Io`] and **nothing is written**, `failures` times;
//!   then the fault is consumed and the same commit succeeds. This is the
//!   `EIO`-then-recovered case a [`RetryPolicy`] absorbs.
//! * [`FaultKind::Permanent`] / [`FaultKind::DiskFull`] — the sink goes
//!   **dead**: this commit and every later write fails. Reads
//!   ([`JournalSink::contents`], proofs, seal checks) still pass through,
//!   modelling a device that can be re-read (or re-mounted read-only)
//!   after its writes started failing.
//! * [`FaultKind::Torn`] — the lines before the fault line commit, then
//!   exactly `bytes` bytes of the fault line are written **with no
//!   newline** and the sink goes dead: the canonical crash artifact
//!   ([`crate::journal::parse_journal`] drops it as a truncated tail and
//!   reopening repairs it).
//! * [`FaultKind::Crash`] — the crash hook (see
//!   [`FaultInjectingSink::on_crash`]) runs, nothing is written, and the
//!   sink goes dead: a process-kill point with a clean (newline-
//!   terminated) tail.
//!
//! ```
//! use trustmeter_fleet::journal::{Journal, JournalSink, MemorySink};
//! use trustmeter_fleet::faults::{FaultInjectingSink, FaultSchedule};
//!
//! // Fail the second line twice, then let it through.
//! let schedule = FaultSchedule::none().transient_at(1, 2);
//! let (sink, probe) = FaultInjectingSink::wrap(Box::new(MemorySink::new()), schedule);
//! let journal = Journal::with_sink(Box::new(sink)).unwrap();
//!
//! let entry = trustmeter_fleet::JournalEntry::checkpoint(Default::default());
//! journal.append(&entry).unwrap(); // line 0: clean
//! assert!(journal.append(&entry).is_err()); // line 1: injected EIO
//! assert!(journal.append(&entry).is_err()); // retry 1: injected EIO
//! journal.append(&entry).unwrap(); // retry 2: fault exhausted
//! assert_eq!(probe.stats().injected_transient, 2);
//! assert!(!probe.is_dead());
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use serde::{Deserialize, Serialize};
use trustmeter_sim::SimRng;

use crate::evidence::{BlockHeader, ChainDigest, InclusionProof, SealKey};
use crate::executor::JobId;
use crate::journal::{JournalError, JournalSink, SinkStats};

/// One injectable journal failure mode (see the [module docs](self) for
/// the exact semantics of each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Fail the commit with [`JournalError::Io`] — nothing written —
    /// this many times, then succeed. The retryable case.
    Transient {
        /// How many consecutive attempts fail before the fault clears.
        failures: u32,
    },
    /// The device fails permanently: this and every later write errors.
    Permanent,
    /// The disk is full (`ENOSPC`): terminal like [`FaultKind::Permanent`],
    /// distinguished in the error text and the [`FaultStats`].
    DiskFull,
    /// Write exactly this many bytes of the fault line (no newline), then
    /// go dead — the canonical torn-tail crash artifact.
    Torn {
        /// Bytes of the fault line that land before the tear.
        bytes: u64,
    },
    /// Run the crash hook and go dead without writing anything — a
    /// process-kill point with a clean tail.
    Crash,
}

impl FaultKind {
    /// A stable lowercase label (`"transient"`, `"disk-full"`, …) for
    /// logs, metrics labels and test assertions — the [`FaultKind`]
    /// analogue of [`crate::journal::JournalEntry::label`].
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Transient { .. } => "transient",
            FaultKind::Permanent => "permanent",
            FaultKind::DiskFull => "disk-full",
            FaultKind::Torn { .. } => "torn",
            FaultKind::Crash => "crash",
        }
    }
}

/// A fault pinned to a committed-line index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedFault {
    /// 0-based index (over the sink's lifetime) of the line whose commit
    /// triggers the fault.
    pub at_line: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic, line-addressed fault plan for one
/// [`FaultInjectingSink`]. Built fluently ([`FaultSchedule::none`] then
/// `transient_at`/`permanent_at`/…) or seeded randomly
/// ([`FaultSchedule::random`]); either way the schedule is pure data, so
/// the same schedule over the same workload reproduces the same failure
/// byte for byte.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The planned faults, sorted by [`PlannedFault::at_line`].
    plan: Vec<PlannedFault>,
}

impl FaultSchedule {
    /// An empty schedule: the wrapper passes everything through (the
    /// healthy-path overhead the bench's `--faults` mode measures).
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Adds a fault at `at_line`, keeping the plan sorted (stable for
    /// equal lines: earlier-added faults fire first).
    pub fn with_fault(mut self, at_line: u64, kind: FaultKind) -> FaultSchedule {
        let at = self
            .plan
            .iter()
            .position(|f| f.at_line > at_line)
            .unwrap_or(self.plan.len());
        self.plan.insert(at, PlannedFault { at_line, kind });
        self
    }

    /// A transient `EIO` at `at_line` for `failures` attempts.
    pub fn transient_at(self, at_line: u64, failures: u32) -> FaultSchedule {
        self.with_fault(at_line, FaultKind::Transient { failures })
    }

    /// A permanent device failure from `at_line` on.
    pub fn permanent_at(self, at_line: u64) -> FaultSchedule {
        self.with_fault(at_line, FaultKind::Permanent)
    }

    /// A full disk (`ENOSPC`) from `at_line` on.
    pub fn disk_full_at(self, at_line: u64) -> FaultSchedule {
        self.with_fault(at_line, FaultKind::DiskFull)
    }

    /// A torn write at `at_line`: `bytes` bytes land, then the sink dies.
    pub fn torn_at(self, at_line: u64, bytes: u64) -> FaultSchedule {
        self.with_fault(at_line, FaultKind::Torn { bytes })
    }

    /// A crash point at `at_line` (see [`FaultInjectingSink::on_crash`]).
    pub fn crash_at(self, at_line: u64) -> FaultSchedule {
        self.with_fault(at_line, FaultKind::Crash)
    }

    /// A seeded random schedule over the first `horizon` lines: one to
    /// three transient faults and, half the time, one terminal fault
    /// (permanent / disk-full / torn / crash) somewhere in the horizon.
    /// Deterministic in `seed`.
    pub fn random(seed: u64, horizon: u64) -> FaultSchedule {
        let mut rng = SimRng::seed_from(seed);
        let horizon = horizon.max(1);
        let mut schedule = FaultSchedule::none();
        let transients = 1 + rng.next_u64() % 3;
        for _ in 0..transients {
            let at = rng.next_u64() % horizon;
            let failures = 1 + (rng.next_u64() % 3) as u32;
            schedule = schedule.transient_at(at, failures);
        }
        if rng.next_u64().is_multiple_of(2) {
            let at = rng.next_u64() % horizon;
            schedule = match rng.next_u64() % 4 {
                0 => schedule.permanent_at(at),
                1 => schedule.disk_full_at(at),
                2 => schedule.torn_at(at, 1 + rng.next_u64() % 40),
                _ => schedule.crash_at(at),
            };
        }
        schedule
    }

    /// The planned faults, sorted by line.
    pub fn plan(&self) -> &[PlannedFault] {
        &self.plan
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }
}

/// What a [`FaultInjectingSink`] has injected and passed so far
/// (monotonic; read through a [`FaultProbe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Transient `EIO`s injected (one per failed attempt).
    pub injected_transient: u64,
    /// Permanent-failure faults fired.
    pub injected_permanent: u64,
    /// Disk-full faults fired.
    pub injected_disk_full: u64,
    /// Torn-write faults fired.
    pub injected_torn: u64,
    /// Crash-point faults fired.
    pub injected_crash: u64,
    /// Commits rejected because the sink was already dead.
    pub rejected_dead: u64,
    /// Commits that passed through cleanly.
    pub commits_passed: u64,
    /// Lines committed to the inner sink.
    pub lines_committed: u64,
}

impl FaultStats {
    /// Total faults injected, all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected_transient
            + self.injected_permanent
            + self.injected_disk_full
            + self.injected_torn
            + self.injected_crash
    }
}

/// Shared fault-injection state: the live plan, the committed-line
/// cursor, terminal death, counters.
#[derive(Debug)]
struct FaultState {
    plan: VecDeque<PlannedFault>,
    /// Lines successfully committed to the inner sink.
    committed: u64,
    /// `Some(reason)` once a terminal fault fired: every later write
    /// fails with this message.
    dead: Option<String>,
    stats: FaultStats,
}

/// A test-side observer for a [`FaultInjectingSink`]: the sink is boxed
/// away inside a [`crate::Journal`], so the probe (which shares its
/// state) is how tests and examples assert on what was injected.
#[derive(Debug, Clone)]
pub struct FaultProbe {
    state: Arc<Mutex<FaultState>>,
}

fn lock_state(state: &Arc<Mutex<FaultState>>) -> MutexGuard<'_, FaultState> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl FaultProbe {
    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        lock_state(&self.state).stats
    }

    /// Whether a terminal fault has fired (all further writes fail).
    pub fn is_dead(&self) -> bool {
        lock_state(&self.state).dead.is_some()
    }

    /// The terminal fault's error text, if one fired.
    pub fn dead_reason(&self) -> Option<String> {
        lock_state(&self.state).dead.clone()
    }

    /// Lines committed to the inner sink so far.
    pub fn lines_committed(&self) -> u64 {
        lock_state(&self.state).committed
    }

    /// Planned faults not yet consumed.
    pub fn faults_remaining(&self) -> usize {
        lock_state(&self.state).plan.len()
    }
}

/// A [`JournalSink`] decorator injecting a [`FaultSchedule`] into any
/// inner sink. Writes are intercepted (see the [module docs](self) for
/// the per-kind semantics); reads pass through even after a terminal
/// fault so recovery and inspection of already-committed bytes keep
/// working. Construct with [`FaultInjectingSink::wrap`], which also
/// returns the [`FaultProbe`] observer.
pub struct FaultInjectingSink {
    inner: Box<dyn JournalSink>,
    state: Arc<Mutex<FaultState>>,
    /// Invoked (with the committed-line count) when a
    /// [`FaultKind::Crash`] fires, before the sink goes dead.
    crash_hook: Option<Box<dyn FnMut(u64) + Send>>,
}

impl fmt::Debug for FaultInjectingSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = lock_state(&self.state);
        f.debug_struct("FaultInjectingSink")
            .field("committed", &state.committed)
            .field("dead", &state.dead)
            .field("faults_remaining", &state.plan.len())
            .finish()
    }
}

impl FaultInjectingSink {
    /// Wraps `inner` with `schedule`, returning the sink and its probe.
    pub fn wrap(
        inner: Box<dyn JournalSink>,
        schedule: FaultSchedule,
    ) -> (FaultInjectingSink, FaultProbe) {
        let state = Arc::new(Mutex::new(FaultState {
            plan: schedule.plan.into(),
            committed: 0,
            dead: None,
            stats: FaultStats::default(),
        }));
        let probe = FaultProbe {
            state: Arc::clone(&state),
        };
        (
            FaultInjectingSink {
                inner,
                state,
                crash_hook: None,
            },
            probe,
        )
    }

    /// Installs the crash hook a [`FaultKind::Crash`] fault invokes (with
    /// the committed-line count) before the sink goes dead. Tests use it
    /// to snapshot "what the journal held at the kill point".
    pub fn on_crash(mut self, hook: impl FnMut(u64) + Send + 'static) -> FaultInjectingSink {
        self.crash_hook = Some(Box::new(hook));
        self
    }

    /// The write interception core: either the whole batch passes, or a
    /// planned fault inside it fires and the batch fails (committing a
    /// prefix only for [`FaultKind::Torn`]).
    fn commit(&mut self, lines: &[&str]) -> Result<(), JournalError> {
        let mut state = lock_state(&self.state);
        if let Some(reason) = &state.dead {
            let reason = reason.clone();
            state.stats.rejected_dead += 1;
            return Err(JournalError::Io(reason));
        }
        let batch = lines.len() as u64;
        let hit = state
            .plan
            .front()
            .is_some_and(|fault| fault.at_line < state.committed + batch);
        if !hit {
            self.inner.append_lines(lines)?;
            state.committed += batch;
            state.stats.commits_passed += 1;
            state.stats.lines_committed += batch;
            return Ok(());
        }
        let mut fault = state.plan.pop_front().expect("hit implies a fault");
        match fault.kind {
            FaultKind::Transient { ref mut failures } => {
                state.stats.injected_transient += 1;
                if *failures > 1 {
                    *failures -= 1;
                    state.plan.push_front(fault);
                }
                Err(JournalError::Io(format!(
                    "injected transient i/o error (EIO) at line {}",
                    fault.at_line
                )))
            }
            FaultKind::Permanent => {
                state.stats.injected_permanent += 1;
                let reason = format!("injected permanent i/o failure at line {}", fault.at_line);
                state.dead = Some(reason.clone());
                Err(JournalError::Io(reason))
            }
            FaultKind::DiskFull => {
                state.stats.injected_disk_full += 1;
                let reason = format!(
                    "injected disk-full (ENOSPC): no space left on device at line {}",
                    fault.at_line
                );
                state.dead = Some(reason.clone());
                Err(JournalError::Io(reason))
            }
            FaultKind::Torn { bytes } => {
                state.stats.injected_torn += 1;
                // The complete lines before the fault line land normally…
                let lead = (fault.at_line - state.committed) as usize;
                if lead > 0 {
                    self.inner.append_lines(&lines[..lead])?;
                    state.committed += lead as u64;
                    state.stats.lines_committed += lead as u64;
                }
                // …then a newline-less fragment of the fault line — the
                // exact artifact a crash mid-write leaves — and the sink
                // dies so nothing can ever append after the fragment.
                let line = lines[lead];
                let cut = (bytes as usize).min(line.len());
                self.inner.append_torn(&line[..cut])?;
                let reason = format!(
                    "injected torn write ({cut} of {} bytes) at line {}",
                    line.len(),
                    fault.at_line
                );
                state.dead = Some(reason.clone());
                Err(JournalError::Io(reason))
            }
            FaultKind::Crash => {
                state.stats.injected_crash += 1;
                let committed = state.committed;
                if let Some(hook) = &mut self.crash_hook {
                    hook(committed);
                }
                let reason = format!("injected crash point at line {}", fault.at_line);
                state.dead = Some(reason.clone());
                Err(JournalError::Io(reason))
            }
        }
    }

    /// Fails with the terminal fault's reason if one has fired.
    fn check_alive(&self) -> Result<(), JournalError> {
        match &lock_state(&self.state).dead {
            Some(reason) => Err(JournalError::Io(reason.clone())),
            None => Ok(()),
        }
    }
}

impl JournalSink for FaultInjectingSink {
    fn append_line(&mut self, line: &str) -> Result<(), JournalError> {
        self.commit(&[line])
    }

    fn append_lines(&mut self, lines: &[&str]) -> Result<(), JournalError> {
        if lines.is_empty() {
            return Ok(());
        }
        self.commit(lines)
    }

    fn append_torn(&mut self, fragment: &str) -> Result<(), JournalError> {
        self.check_alive()?;
        self.inner.append_torn(fragment)
    }

    fn begin_checkpoint(&mut self) -> Result<(), JournalError> {
        self.check_alive()?;
        self.inner.begin_checkpoint()
    }

    fn abort_checkpoint(&mut self) {
        self.inner.abort_checkpoint()
    }

    fn finish_checkpoint(&mut self) -> Result<(), JournalError> {
        self.check_alive()?;
        self.inner.finish_checkpoint()
    }

    fn seal_head(&mut self) -> Result<(), JournalError> {
        self.check_alive()?;
        self.inner.seal_head()
    }

    fn anchor_chain(&mut self, head: ChainDigest) {
        self.inner.anchor_chain(head)
    }

    fn sink_stats(&self) -> SinkStats {
        self.inner.sink_stats()
    }

    // Reads pass through even when dead: already-committed bytes stay
    // readable (page cache / read-only remount), which is exactly what
    // recovery and post-mortem inspection rely on.

    fn sealed_headers(&self) -> Result<Vec<BlockHeader>, JournalError> {
        self.inner.sealed_headers()
    }

    fn prove(&self, job: JobId) -> Result<Vec<InclusionProof>, JournalError> {
        self.inner.prove(job)
    }

    fn verify_seals(&self, key: &SealKey) -> Result<u64, JournalError> {
        self.inner.verify_seals(key)
    }

    fn contents(&self) -> Result<String, JournalError> {
        self.inner.contents()
    }
}

/// One injectable executor failure mode, the compute-layer analogue of
/// [`FaultKind`]. Injected into the worker pool by a
/// [`WorkerFaultSchedule`]; detection and recovery are the ingest
/// supervisor's job (see [`SupervisorPolicy`] and
/// [`crate::ingest::FleetIngest`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerFaultKind {
    /// The worker panics mid-execution. The pool catches the unwind,
    /// reaps the worker, respawns it under the supervisor's restart
    /// budget and reassigns the in-flight batch — no panic escapes.
    Panic,
    /// The worker wedges for this many **virtual ticks** before
    /// finishing. If a job deadline is configured
    /// ([`crate::IngestConfig::with_job_deadline`]) and the hang
    /// outlasts it, the watchdog reaps the worker and reassigns the job;
    /// the zombie's late completion is discarded by the dedup guard.
    Hang {
        /// Virtual ticks the worker spins before completing.
        ticks: u64,
    },
    /// The execution runs `factor`× its declared workload length (in
    /// virtual ticks). A pathological slowdown may or may not trip the
    /// job deadline — both outcomes release bit-identical results.
    SlowDown {
        /// Execution-time multiplier (≥ 1).
        factor: u64,
    },
    /// The worker returns a corrupted [`crate::RunRecord`] (inflated
    /// billed usage). The pool's completion-side quote check — the same
    /// attestation machinery the auditor uses — rejects it, reaps the
    /// lying worker, and re-executes the job on an honest one.
    WrongResult,
}

impl WorkerFaultKind {
    /// A stable lowercase label (`"panic"`, `"hang"`, …) for logs and
    /// test assertions, mirroring [`FaultKind::label`].
    pub fn label(&self) -> &'static str {
        match self {
            WorkerFaultKind::Panic => "panic",
            WorkerFaultKind::Hang { .. } => "hang",
            WorkerFaultKind::SlowDown { .. } => "slowdown",
            WorkerFaultKind::WrongResult => "wrong-result",
        }
    }
}

/// A worker fault pinned to a job id, the executor analogue of
/// [`PlannedFault`]. The fault fires on the job's first `attempts`
/// execution attempts (1-based), then clears — so a reassigned retry
/// succeeds unless the fault was planned to outlast the supervisor's
/// `max_job_attempts` (a **poison job**, see
/// [`WorkerFaultSchedule::poison_on`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedWorkerFault {
    /// The job whose execution triggers the fault.
    pub job: JobId,
    /// What goes wrong.
    pub kind: WorkerFaultKind,
    /// How many execution attempts the fault survives (1 = first
    /// attempt only; `u32::MAX` = every attempt, i.e. poison).
    pub attempts: u32,
}

/// A deterministic, job-addressed worker fault plan, the compute-layer
/// mirror of [`FaultSchedule`]: pure data, seeded, reproducible. Built
/// fluently ([`WorkerFaultSchedule::none`] then `panic_on`/`hang_on`/…)
/// or seeded randomly ([`WorkerFaultSchedule::random`], which never
/// plans a poison job), and installed with
/// [`crate::IngestConfig::with_worker_faults`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WorkerFaultSchedule {
    /// The planned faults, sorted by job id (stable for equal ids:
    /// earlier-added faults match first).
    plan: Vec<PlannedWorkerFault>,
}

impl WorkerFaultSchedule {
    /// An empty schedule: the pool runs exactly as without one.
    pub fn none() -> WorkerFaultSchedule {
        WorkerFaultSchedule::default()
    }

    /// Adds a fault for `job`, keeping the plan sorted by job id.
    pub fn with_worker_fault(
        mut self,
        job: JobId,
        kind: WorkerFaultKind,
        attempts: u32,
    ) -> WorkerFaultSchedule {
        let at = self
            .plan
            .iter()
            .position(|f| f.job.0 > job.0)
            .unwrap_or(self.plan.len());
        self.plan.insert(
            at,
            PlannedWorkerFault {
                job,
                kind,
                attempts,
            },
        );
        self
    }

    /// The worker executing `job` panics (first attempt only).
    pub fn panic_on(self, job: JobId) -> WorkerFaultSchedule {
        self.with_worker_fault(job, WorkerFaultKind::Panic, 1)
    }

    /// The worker executing `job` hangs for `ticks` virtual ticks
    /// (first attempt only).
    pub fn hang_on(self, job: JobId, ticks: u64) -> WorkerFaultSchedule {
        self.with_worker_fault(job, WorkerFaultKind::Hang { ticks }, 1)
    }

    /// The worker executing `job` runs `factor`× slow (first attempt
    /// only).
    pub fn slow_on(self, job: JobId, factor: u64) -> WorkerFaultSchedule {
        self.with_worker_fault(job, WorkerFaultKind::SlowDown { factor }, 1)
    }

    /// The worker executing `job` returns a corrupted record (first
    /// attempt only).
    pub fn wrong_result_on(self, job: JobId) -> WorkerFaultSchedule {
        self.with_worker_fault(job, WorkerFaultKind::WrongResult, 1)
    }

    /// `job` is **poison**: it panics its worker on *every* attempt, so
    /// the supervisor's `max_job_attempts` budget is the only way out —
    /// the job is individually quarantined with a journaled
    /// [`crate::JournalEntry::Poisoned`] verdict while the rest of the
    /// fleet keeps flowing.
    pub fn poison_on(self, job: JobId) -> WorkerFaultSchedule {
        self.with_worker_fault(job, WorkerFaultKind::Panic, u32::MAX)
    }

    /// A seeded random schedule over job ids `0..jobs`: one to three
    /// faulted jobs, each with one uniformly drawn fault kind firing on
    /// the first attempt only — **never** a poison job, so recovery
    /// always converges to the unfaulted result. Deterministic in
    /// `seed`.
    pub fn random(seed: u64, jobs: u64) -> WorkerFaultSchedule {
        let mut rng = SimRng::seed_from(seed);
        let jobs = jobs.max(1);
        let mut schedule = WorkerFaultSchedule::none();
        let faulted = 1 + rng.next_u64() % 3;
        for _ in 0..faulted {
            let job = JobId(rng.next_u64() % jobs);
            schedule = match rng.next_u64() % 4 {
                0 => schedule.panic_on(job),
                1 => schedule.hang_on(job, 1 + rng.next_u64() % 16),
                2 => schedule.slow_on(job, 2 + rng.next_u64() % 3),
                _ => schedule.wrong_result_on(job),
            };
        }
        schedule
    }

    /// The fault (if any) that fires on execution attempt `attempt`
    /// (1-based) of `job`. Pure in `(self, job, attempt)` — the pool
    /// tracks attempts, the schedule just answers.
    pub fn fault_for(&self, job: JobId, attempt: u32) -> Option<WorkerFaultKind> {
        self.plan
            .iter()
            .find(|f| f.job == job && attempt <= f.attempts)
            .map(|f| f.kind)
    }

    /// The planned faults, sorted by job id.
    pub fn plan(&self) -> &[PlannedWorkerFault] {
        &self.plan
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }
}

/// The supervisor's bounded recovery ladder for a failing worker pool:
/// respawn within a restart budget, degrade to fewer workers when the
/// budget runs dry, quarantine the fleet when the last worker dies, and
/// declare a job poison once it has killed `max_job_attempts` workers
/// in a row. Pure data; the enforcement lives in
/// [`crate::ingest::FleetIngest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisorPolicy {
    /// Worker respawns allowed per restart window before the pool
    /// degrades (a dead worker is no longer replaced).
    pub max_restarts: u32,
    /// The restart-budget window, in virtual ticks; `0` makes the
    /// budget a lifetime total.
    pub restart_window: u64,
    /// Execution attempts a job gets before it is declared **poison**
    /// (journaled, tenant-visible, individually quarantined). At
    /// least 1.
    pub max_job_attempts: u32,
}

impl Default for SupervisorPolicy {
    /// Eight respawns per 1024-tick window, three attempts per job.
    fn default() -> SupervisorPolicy {
        SupervisorPolicy {
            max_restarts: 8,
            restart_window: 1024,
            max_job_attempts: 3,
        }
    }
}

impl SupervisorPolicy {
    /// Replaces the per-window respawn budget.
    pub fn with_max_restarts(mut self, max_restarts: u32) -> SupervisorPolicy {
        self.max_restarts = max_restarts;
        self
    }

    /// Replaces the restart-budget window (virtual ticks; `0` =
    /// lifetime budget).
    pub fn with_restart_window(mut self, restart_window: u64) -> SupervisorPolicy {
        self.restart_window = restart_window;
        self
    }

    /// Replaces the poison threshold.
    ///
    /// # Panics
    /// Panics if `max_job_attempts` is zero (a job needs at least one
    /// attempt to fail).
    pub fn with_max_job_attempts(mut self, max_job_attempts: u32) -> SupervisorPolicy {
        assert!(
            max_job_attempts > 0,
            "a job needs at least one execution attempt"
        );
        self.max_job_attempts = max_job_attempts;
        self
    }
}

/// A seeded-deterministic bounded retry policy for journal commits:
/// `max_attempts` tries, exponential backoff between them measured in
/// **virtual ticks** (cooperative `yield_now` loops, never wall-clock
/// sleeps, so tests and the bench stay fast and deterministic), with
/// seed-derived jitter so colliding retriers deterministically de-sync.
///
/// The ingest pipeline runs every release-path and submission-path
/// journal commit under its configured policy
/// ([`crate::IngestConfig::with_retry_policy`]); on exhaustion it enters
/// quarantine instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff after the first failure, in virtual ticks.
    pub base_ticks: u64,
    /// Backoff ceiling, in virtual ticks.
    pub max_ticks: u64,
    /// Jitter seed (the fleet seed, conventionally).
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Four attempts, backoff 1 → 2 → 4 ticks (capped at 64), seed 0.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_ticks: 1,
            max_ticks: 64,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and default backoff.
    ///
    /// # Panics
    /// Panics if `max_attempts` is zero (the first try is an attempt).
    pub fn new(max_attempts: u32) -> RetryPolicy {
        assert!(
            max_attempts > 0,
            "a retry policy needs at least one attempt"
        );
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// No retries: one attempt, fail straight to quarantine.
    pub fn none() -> RetryPolicy {
        RetryPolicy::new(1)
    }

    /// Replaces the first-failure backoff (in virtual ticks).
    pub fn with_base_ticks(mut self, base_ticks: u64) -> RetryPolicy {
        self.base_ticks = base_ticks;
        self
    }

    /// Replaces the backoff ceiling (in virtual ticks).
    pub fn with_max_ticks(mut self, max_ticks: u64) -> RetryPolicy {
        self.max_ticks = max_ticks;
        self
    }

    /// Replaces the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// The backoff before retry number `attempt` (1-based: the wait after
    /// the first failure is `backoff_ticks(1)`), in virtual ticks:
    /// `min(base << (attempt-1), max)` plus deterministic seed-derived
    /// jitter in `[0, backoff/2]`, capped at `max_ticks`. Pure in
    /// `(self, attempt)`.
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        let shift = (attempt.saturating_sub(1)).min(63);
        let exp = self
            .base_ticks
            .checked_shl(shift)
            .unwrap_or(u64::MAX)
            .min(self.max_ticks);
        let jitter = if exp >= 2 {
            SimRng::seed_from(self.seed ^ (attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .next_u64()
                % (exp / 2 + 1)
        } else {
            0
        };
        (exp + jitter).min(self.max_ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, JournalEntry, MemorySink};

    fn checkpoint_entry() -> JournalEntry {
        JournalEntry::checkpoint(Default::default())
    }

    #[test]
    fn empty_schedule_passes_everything_through() {
        let (sink, probe) =
            FaultInjectingSink::wrap(Box::new(MemorySink::new()), FaultSchedule::none());
        let journal = Journal::with_sink(Box::new(sink)).unwrap();
        for _ in 0..5 {
            journal.append(&checkpoint_entry()).unwrap();
        }
        let stats = probe.stats();
        assert_eq!(stats.injected_total(), 0);
        assert_eq!(stats.lines_committed, 5);
        assert_eq!(journal.entries().unwrap().0.len(), 5);
    }

    #[test]
    fn transient_fault_fails_then_clears() {
        let schedule = FaultSchedule::none().transient_at(1, 2);
        let (sink, probe) = FaultInjectingSink::wrap(Box::new(MemorySink::new()), schedule);
        let journal = Journal::with_sink(Box::new(sink)).unwrap();
        journal.append(&checkpoint_entry()).unwrap();
        assert!(journal.append(&checkpoint_entry()).is_err());
        assert!(journal.append(&checkpoint_entry()).is_err());
        journal.append(&checkpoint_entry()).unwrap();
        assert_eq!(probe.stats().injected_transient, 2);
        assert!(!probe.is_dead());
        // The chain survived the retries: nothing was written on the
        // failed attempts, so the parse walks cleanly.
        assert_eq!(journal.entries().unwrap().0.len(), 2);
    }

    #[test]
    fn disk_full_is_terminal_but_reads_pass_through() {
        let schedule = FaultSchedule::none().disk_full_at(1);
        let (sink, probe) = FaultInjectingSink::wrap(Box::new(MemorySink::new()), schedule);
        let journal = Journal::with_sink(Box::new(sink)).unwrap();
        journal.append(&checkpoint_entry()).unwrap();
        let err = journal.append(&checkpoint_entry()).unwrap_err();
        assert!(err.to_string().contains("disk-full"), "{err}");
        // Dead: every further write fails…
        assert!(journal.append(&checkpoint_entry()).is_err());
        assert!(probe.is_dead());
        assert_eq!(probe.stats().rejected_dead, 1);
        // …but the committed prefix is still readable.
        assert_eq!(journal.entries().unwrap().0.len(), 1);
    }

    #[test]
    fn torn_fault_leaves_the_canonical_crash_artifact() {
        let schedule = FaultSchedule::none().torn_at(1, 10);
        let (sink, probe) = FaultInjectingSink::wrap(Box::new(MemorySink::new()), schedule);
        let journal = Journal::with_sink(Box::new(sink)).unwrap();
        journal.append(&checkpoint_entry()).unwrap();
        assert!(journal.append(&checkpoint_entry()).is_err());
        assert!(probe.is_dead());
        assert_eq!(probe.stats().injected_torn, 1);
        // Exactly 10 bytes of line 1 landed, with no newline: the parse
        // drops it as a truncated tail, keeping line 0.
        let (entries, tail) = journal.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert!(tail.is_truncated());
    }

    #[test]
    fn torn_fault_mid_batch_commits_the_leading_lines() {
        let schedule = FaultSchedule::none().torn_at(2, 4);
        let (sink, probe) = FaultInjectingSink::wrap(Box::new(MemorySink::new()), schedule);
        let journal = Journal::with_sink(Box::new(sink)).unwrap();
        let batch = vec![checkpoint_entry(); 4];
        assert!(journal.append_batch(&batch).is_err());
        // Lines 0 and 1 committed whole; line 2 tore; line 3 never landed.
        assert_eq!(probe.lines_committed(), 2);
        let (entries, tail) = journal.entries().unwrap();
        assert_eq!(entries.len(), 2);
        assert!(tail.is_truncated());
    }

    #[test]
    fn crash_fault_runs_the_hook_with_a_clean_tail() {
        let schedule = FaultSchedule::none().crash_at(2);
        let (sink, probe) = FaultInjectingSink::wrap(Box::new(MemorySink::new()), schedule);
        let seen = Arc::new(Mutex::new(None));
        let seen_in_hook = Arc::clone(&seen);
        let sink = sink.on_crash(move |committed| {
            *seen_in_hook.lock().unwrap() = Some(committed);
        });
        let journal = Journal::with_sink(Box::new(sink)).unwrap();
        journal.append(&checkpoint_entry()).unwrap();
        journal.append(&checkpoint_entry()).unwrap();
        assert!(journal.append(&checkpoint_entry()).is_err());
        assert_eq!(*seen.lock().unwrap(), Some(2));
        assert!(probe.is_dead());
        let (entries, tail) = journal.entries().unwrap();
        assert_eq!(entries.len(), 2);
        assert!(!tail.is_truncated(), "a crash point leaves a clean tail");
    }

    #[test]
    fn random_schedules_are_deterministic_in_the_seed() {
        for seed in 0..32 {
            assert_eq!(
                FaultSchedule::random(seed, 100),
                FaultSchedule::random(seed, 100)
            );
        }
        // And not all identical.
        assert_ne!(FaultSchedule::random(1, 100), FaultSchedule::random(2, 100));
    }

    #[test]
    fn schedule_builder_keeps_the_plan_sorted() {
        let schedule = FaultSchedule::none()
            .permanent_at(9)
            .transient_at(2, 1)
            .torn_at(5, 3);
        let lines: Vec<u64> = schedule.plan().iter().map(|f| f.at_line).collect();
        assert_eq!(lines, vec![2, 5, 9]);
        assert_eq!(schedule.plan()[0].kind.label(), "transient");
    }

    #[test]
    fn worker_schedules_are_deterministic_seeded_and_poison_free() {
        for seed in 0..32 {
            assert_eq!(
                WorkerFaultSchedule::random(seed, 12),
                WorkerFaultSchedule::random(seed, 12)
            );
        }
        assert_ne!(
            WorkerFaultSchedule::random(1, 12),
            WorkerFaultSchedule::random(2, 12)
        );
        // Random schedules never plan a poison job: every fault clears
        // after the first attempt, inside any supervisor's budget.
        for seed in 0..64 {
            for fault in WorkerFaultSchedule::random(seed, 12).plan() {
                assert_eq!(fault.attempts, 1, "seed {seed} planned {fault:?}");
            }
        }
    }

    #[test]
    fn worker_fault_lookup_is_attempt_scoped() {
        let schedule = WorkerFaultSchedule::none()
            .hang_on(JobId(3), 7)
            .poison_on(JobId(9))
            .wrong_result_on(JobId(1));
        // Sorted by job id, labels stable.
        let jobs: Vec<u64> = schedule.plan().iter().map(|f| f.job.0).collect();
        assert_eq!(jobs, vec![1, 3, 9]);
        assert_eq!(schedule.plan()[0].kind.label(), "wrong-result");
        // First attempt faults; the reassigned second attempt is clean…
        assert_eq!(
            schedule.fault_for(JobId(3), 1),
            Some(WorkerFaultKind::Hang { ticks: 7 })
        );
        assert_eq!(schedule.fault_for(JobId(3), 2), None);
        assert_eq!(schedule.fault_for(JobId(2), 1), None);
        // …except for a poison job, which faults on every attempt.
        for attempt in [1, 2, 3, 1000] {
            assert_eq!(
                schedule.fault_for(JobId(9), attempt),
                Some(WorkerFaultKind::Panic)
            );
        }
    }

    #[test]
    fn backoff_jitter_stays_within_bounds_for_the_first_ten_attempts() {
        // Across a spread of seeds and shapes, every backoff lands in
        // [base_ticks, max_ticks] for attempts 1..=10.
        for seed in 0..32u64 {
            for (base, max) in [(1u64, 64u64), (2, 16), (4, 4), (1, 1), (8, 256)] {
                let policy = RetryPolicy::default()
                    .with_base_ticks(base)
                    .with_max_ticks(max)
                    .with_seed(seed);
                for attempt in 1..=10u32 {
                    let ticks = policy.backoff_ticks(attempt);
                    assert!(
                        ticks >= base.min(max) && ticks <= max,
                        "seed {seed} base {base} max {max} attempt {attempt}: {ticks}"
                    );
                }
            }
        }
    }

    #[test]
    fn same_seed_policies_produce_identical_tick_sequences() {
        for seed in 0..16u64 {
            let a = RetryPolicy::new(10).with_base_ticks(2).with_seed(seed);
            let b = RetryPolicy::new(10).with_base_ticks(2).with_seed(seed);
            let ticks_a: Vec<u64> = (1..=10).map(|n| a.backoff_ticks(n)).collect();
            let ticks_b: Vec<u64> = (1..=10).map(|n| b.backoff_ticks(n)).collect();
            assert_eq!(ticks_a, ticks_b, "seed {seed}");
        }
        // Different seeds de-sync somewhere in the first ten attempts.
        let a = RetryPolicy::new(10).with_base_ticks(2).with_seed(1);
        let b = RetryPolicy::new(10).with_base_ticks(2).with_seed(2);
        assert_ne!(
            (1..=10).map(|n| a.backoff_ticks(n)).collect::<Vec<u64>>(),
            (1..=10).map(|n| b.backoff_ticks(n)).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_monotonic_in_shape() {
        let policy = RetryPolicy::default().with_seed(42);
        let ticks: Vec<u64> = (1..8).map(|a| policy.backoff_ticks(a)).collect();
        assert_eq!(
            ticks,
            (1..8)
                .map(|a| policy.backoff_ticks(a))
                .collect::<Vec<u64>>(),
            "pure in (policy, attempt)"
        );
        for t in &ticks {
            assert!(*t <= policy.max_ticks);
        }
        assert!(ticks[0] >= policy.base_ticks);
        // Huge attempt counts saturate instead of overflowing.
        assert_eq!(policy.backoff_ticks(u32::MAX), policy.max_ticks);
    }
}
