//! Input strategies: deterministic generators over the [`TestRng`] stream.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Values generatable by [`any`].
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// A strategy producing `Vec`s with lengths drawn from `size` and elements
/// from `element` (the `prop::collection::vec` of real proptest).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// String patterns: real proptest compiles the full regex; this stub
/// understands the workspace's `[a-z]`-class-with-repetition shapes —
/// literal characters and `[x-y]{m,n}` / `[x-y]{n}` / `[x-y]` atoms.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '[' {
                out.push(c);
                continue;
            }
            let lo = chars.next().expect("char class start");
            assert_eq!(chars.next(), Some('-'), "expected `[x-y]` char class");
            let hi = chars.next().expect("char class end");
            assert_eq!(chars.next(), Some(']'), "unterminated char class");
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<u64>().expect("repeat min"),
                        n.trim().parse::<u64>().expect("repeat max"),
                    ),
                    None => {
                        let n = spec.trim().parse::<u64>().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = rng.range_u64(min, max + 1);
            for _ in 0..count {
                let offset = rng.range_u64(0, hi as u64 - lo as u64 + 1) as u32;
                out.push(char::from_u32(lo as u32 + offset).expect("char in class"));
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let x = (5u64..15).generate(&mut rng);
            assert!((5..15).contains(&x));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = (-4i32..3).generate(&mut rng);
            assert!((-4..3).contains(&i));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::deterministic();
        for _ in 0..100 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()), "len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let fixed = "[a-c]{3}".generate(&mut rng);
        assert_eq!(fixed.len(), 3);
    }

    #[test]
    fn vec_and_tuple_compose() {
        let mut rng = TestRng::deterministic();
        let strat = vec((1u32..6, any::<bool>(), 1u64..30_000), 1..60);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((1..60).contains(&v.len()));
            for (a, _, c) in v {
                assert!((1..6).contains(&a));
                assert!((1..30_000).contains(&c));
            }
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::deterministic();
        let strat = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let x = strat.generate(&mut rng);
            assert_eq!(x % 2, 0);
            assert!((2..20).contains(&x));
        }
    }
}
