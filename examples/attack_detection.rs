//! Runs every attack from the paper against the same victim and shows how
//! the three defensive properties of §VI-B — source integrity, execution
//! integrity and fine-grained metering — detect or neutralise each one.
//!
//! ```text
//! cargo run --release --example attack_detection
//! ```

use trustmeter::prelude::*;
use trustmeter_attacks::paper_attack_suite;

fn main() {
    let scale = 0.005;
    let freq = CpuFrequency::E7200;
    let scenario = Scenario::new(Workload::Whetstone, scale);

    let clean = scenario.run_clean();
    let whitelist = clean.measured_images.clone();
    println!(
        "clean run: billed {:.3} s, ground truth {:.3} s\n",
        clean.billed_total_secs(),
        clean.truth_total_secs()
    );

    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>10} {:>16}",
        "attack", "billed(s)", "truth(s)", "inflation", "flagged", "classification"
    );
    for attack in paper_attack_suite(scale, clean.elapsed_secs * 2.0) {
        let outcome = scenario.run_attacked(attack.as_ref());
        let report = OverchargeReport::compare(outcome.victim_billed, clean.victim_billed, freq);
        let flagged = !outcome.unexpected_images(&whitelist).is_empty();
        println!(
            "{:<22} {:>10.3} {:>10.3} {:>11.2}x {:>10} {:>16}",
            attack.name(),
            outcome.billed_total_secs(),
            outcome.truth_total_secs(),
            report.inflation_ratio,
            if flagged { "yes" } else { "no" },
            report.class.to_string(),
        );
    }

    println!(
        "\nLaunch-time attacks (shell, preload, interposition) are caught by the measured\n\
         launch (source integrity); the scheduling attack disappears under TSC-based\n\
         fine-grained metering; the interrupt flood stops being billable to the victim under\n\
         process-aware interrupt accounting. This is the paper's §VI-B argument, executed."
    );
}
