//! The §V-C attack comparison and the §VI-B defense evaluation.

use crate::figures::ExperimentConfig;
use crate::report::{ComparisonRow, ComparisonTable};
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use trustmeter_attacks::{
    paper_attack_suite, InterruptFloodAttack, PreloadConstructorAttack, SchedulingAttack,
    ShellAttack,
};
use trustmeter_workloads::Workload;

/// Builds the §V-C comparison table by running every attack against the
/// Whetstone victim and quantifying its effect.
pub fn comparison_table(cfg: &ExperimentConfig) -> ComparisonTable {
    let scenario = scenario_for(cfg, Workload::Whetstone);
    let clean = scenario.run_clean();
    let clean_total = clean.billed_total_secs();
    let clean_stime = clean.billed_stime_secs();

    let mut table = ComparisonTable::default();
    for attack in paper_attack_suite(cfg.scale, clean.elapsed_secs * 2.0) {
        let attacked = scenario.run_attacked(attack.as_ref());
        let extra = (attacked.billed_total_secs() - clean_total).max(0.0);
        let extra_stime = (attacked.billed_stime_secs() - clean_stime).max(0.0);
        let stime_share = if extra > 1e-9 {
            (extra_stime / extra).clamp(0.0, 1.0)
        } else {
            0.0
        };
        table.rows.push(ComparisonRow {
            attack: attack.name().to_string(),
            component: attack.class().to_string(),
            privilege: attack.required_privilege().to_string(),
            inflation_factor: if clean_total > 0.0 {
                attacked.billed_total_secs() / clean_total
            } else {
                1.0
            },
            stime_share_of_extra: stime_share,
            extra_secs: extra,
        });
    }
    table
}

fn scenario_for(cfg: &ExperimentConfig, workload: Workload) -> Scenario {
    Scenario::new(workload, cfg.scale)
        .with_config(trustmeter_kernel::KernelConfig::paper_machine().with_seed(cfg.seed))
}

/// Results of replaying the attacks against the defenses of §VI-B.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseReport {
    /// Overcharge (billed vs clean billed) of the scheduling-attack victim
    /// under the commodity tick scheme, as a factor.
    pub scheduling_tick_inflation: f64,
    /// The same victim's fine-grained (TSC) reading relative to its clean
    /// ground truth — fine-grained metering removes the overcharge.
    pub scheduling_tsc_inflation: f64,
    /// Victim system seconds billed by the TSC scheme under interrupt
    /// flooding (fine-grained but not process-aware: still inflated).
    pub irqflood_tsc_stime_secs: f64,
    /// Victim system seconds billed by the process-aware scheme under the
    /// same flood (the junk interrupts are no longer charged to the victim).
    pub irqflood_process_aware_stime_secs: f64,
    /// Names of unexpected images the measurement log flags for the shell
    /// attack.
    pub shell_attack_flagged: Vec<String>,
    /// Names of unexpected images flagged for the preload attack.
    pub preload_attack_flagged: Vec<String>,
    /// Whether the clean run verifies (no false positives).
    pub clean_run_verifies: bool,
}

impl DefenseReport {
    /// `true` when all three defensive properties behave as §VI-B expects.
    pub fn all_defenses_effective(&self) -> bool {
        self.scheduling_tsc_inflation < self.scheduling_tick_inflation
            && self.irqflood_process_aware_stime_secs <= self.irqflood_tsc_stime_secs
            && !self.shell_attack_flagged.is_empty()
            && !self.preload_attack_flagged.is_empty()
            && self.clean_run_verifies
    }
}

/// Replays the key attacks against the paper's three defensive properties:
/// fine-grained (TSC) metering, process-aware interrupt accounting, and
/// measured launch (source integrity).
pub fn defenses(cfg: &ExperimentConfig) -> DefenseReport {
    // --- Fine-grained metering vs the scheduling attack -------------------
    let scenario = scenario_for(cfg, Workload::Whetstone);
    let clean = scenario.run_clean();
    let sched = scenario.run_attacked(&SchedulingAttack::paper_default(cfg.scale, -10));
    let scheduling_tick_inflation = sched.billed_total_secs() / clean.billed_total_secs().max(1e-9);
    let scheduling_tsc_inflation = sched.truth_total_secs() / clean.truth_total_secs().max(1e-9);

    // --- Process-aware interrupt accounting vs interrupt flooding ---------
    let flood = scenario.run_attacked(&InterruptFloodAttack::paper_default());
    let irqflood_tsc_stime_secs = flood.truth_stime_secs();
    let irqflood_process_aware_stime_secs = {
        // process-aware stime in seconds
        let khz = flood.frequency_khz as f64 * 1_000.0;
        flood.victim_process_aware.stime.as_f64() / khz
    };

    // --- Source integrity vs the launch-time attacks ----------------------
    let whitelist = clean.measured_images.clone();
    let shell = scenario.run_attacked(&ShellAttack::paper_default(cfg.scale));
    let preload = scenario.run_attacked(&PreloadConstructorAttack::paper_default(cfg.scale));
    let shell_attack_flagged = shell
        .unexpected_images(&whitelist)
        .into_iter()
        .map(String::from)
        .collect();
    let preload_attack_flagged = preload
        .unexpected_images(&whitelist)
        .into_iter()
        .map(String::from)
        .collect();
    let clean_again = scenario.run_clean();
    let clean_run_verifies = clean_again.unexpected_images(&whitelist).is_empty();

    DefenseReport {
        scheduling_tick_inflation,
        scheduling_tsc_inflation,
        irqflood_tsc_stime_secs,
        irqflood_process_aware_stime_secs,
        shell_attack_flagged,
        preload_attack_flagged,
        clean_run_verifies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustmeter_core::AttackClass;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.002,
            seed: 9,
        }
    }

    #[test]
    fn comparison_covers_all_attacks_and_flags_components() {
        let table = comparison_table(&tiny());
        assert_eq!(table.rows.len(), 7);
        let row = |name: &str| table.rows.iter().find(|r| r.attack == name).unwrap();
        // Launch-time attacks inflate and are user-time dominated.
        assert!(row("shell").inflation_factor > 1.05);
        assert!(row("shell").stime_share_of_extra < 0.3);
        assert!(row("preload-constructor").inflation_factor > 1.05);
        assert!(row("interposition").inflation_factor > 1.05);
        // The scheduling attack inflates the victim's billed time.
        assert!(row("scheduling").inflation_factor > 1.1);
        // Thrashing's extra time is dominated by kernel-side work (debug
        // exceptions, SIGTRAP delivery, ptrace stops) far more than the
        // launch-time attacks are.
        assert!(row("thrashing").stime_share_of_extra > 0.4);
        assert!(row("thrashing").stime_share_of_extra > row("shell").stime_share_of_extra);
        assert_eq!(
            row("shell").component,
            AttackClass::UserTimeInflation.to_string()
        );
        // Rendering works.
        assert!(format!("{table}").contains("scheduling"));
    }

    #[test]
    fn defenses_neutralize_the_attacks() {
        let report = defenses(&tiny());
        assert!(
            report.scheduling_tick_inflation > 1.1,
            "tick inflation {}",
            report.scheduling_tick_inflation
        );
        assert!(
            report.scheduling_tsc_inflation < 1.05,
            "tsc inflation {}",
            report.scheduling_tsc_inflation
        );
        assert!(report.irqflood_process_aware_stime_secs < report.irqflood_tsc_stime_secs);
        assert!(report
            .shell_attack_flagged
            .iter()
            .any(|n| n.contains("shell-injected")));
        assert!(report
            .preload_attack_flagged
            .iter()
            .any(|n| n.contains("attack_preload")));
        assert!(report.clean_run_verifies);
        assert!(report.all_defenses_effective());
    }
}
