//! The bounded, per-tenant-fair submission queue under the ingest pipeline.
//!
//! [`FairQueue`] is a pure data structure (no locks, no threads): one FIFO
//! lane per tenant plus a round-robin rotation over the tenants that
//! currently have queued work. [`FairQueue::pop`] serves the front tenant of
//! the rotation and then moves it to the back, so a tenant submitting
//! thousands of jobs cannot starve a tenant submitting one — the greedy
//! tenant's backlog waits in its own lane while other lanes are served.
//!
//! Capacity bounds the total number of *queued* (not yet dispatched) jobs
//! across all lanes; the worker pool in [`crate::ingest`] turns a full queue
//! into backpressure ([`crate::ingest::SubmitError::QueueFull`] or a
//! blocking submit, by policy).
//!
//! ```
//! use trustmeter_fleet::queue::FairQueue;
//! use trustmeter_fleet::{JobSpec, TenantId};
//! use trustmeter_workloads::Workload;
//!
//! let mut queue = FairQueue::new(8);
//! // A greedy tenant enqueues three jobs, a modest tenant one.
//! for id in 0..3 {
//!     queue.push(id, JobSpec::clean(id, TenantId(1), Workload::Pi, 0.001)).unwrap();
//! }
//! queue.push(3, JobSpec::clean(3, TenantId(2), Workload::Pi, 0.001)).unwrap();
//!
//! // Round-robin: tenant 2 is served second, not last.
//! let tenants: Vec<u32> = std::iter::from_fn(|| queue.pop())
//!     .map(|queued| queued.job.tenant.0)
//!     .collect();
//! assert_eq!(tenants, vec![1, 2, 1, 1]);
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

use crate::executor::JobSpec;
use crate::tenant::TenantId;

/// A job waiting in the queue, tagged with its submission sequence number
/// (the merge key that keeps streamed runs bit-identical to batch runs).
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedJob {
    /// Submission sequence number, assigned in `submit()` order.
    pub seq: u64,
    /// The job as submitted.
    pub job: JobSpec,
    /// When the job was submitted — stamped only when a
    /// [`crate::trace::PipelineTracer`] is attached, so the dispatching
    /// worker can record the queue-wait span. Observation only: nothing
    /// downstream of dispatch reads it.
    pub submitted_at: Option<Instant>,
    /// Execution attempt this dispatch represents, 1-based. Fresh
    /// submissions enter at 1; the supervisor bumps it each time the job is
    /// reclaimed from a dead worker and requeued, so the worker-fault
    /// schedule and the poison-job ladder can address individual attempts.
    pub attempt: u32,
}

/// A bounded multi-tenant queue with weighted round-robin fairness across
/// tenants (deficit round robin with unit-size jobs: a tenant's lane is
/// served up to `weight` jobs per rotation turn, so no fractional deficit
/// ever carries over).
#[derive(Debug, Clone, Default)]
pub struct FairQueue {
    /// One FIFO lane per tenant with queued work.
    lanes: BTreeMap<TenantId, VecDeque<QueuedJob>>,
    /// Round-robin rotation: each tenant with queued work appears exactly
    /// once; `pop` serves the front and rotates it to the back once its
    /// per-turn credit is spent.
    rotation: VecDeque<TenantId>,
    /// Total queued jobs across all lanes.
    queued: usize,
    /// Maximum total queued jobs (0 = unbounded).
    capacity: usize,
    /// Per-tenant service weights (jobs served per rotation turn); tenants
    /// absent from the map get weight 1, which degenerates to plain
    /// round-robin.
    weights: BTreeMap<TenantId, u32>,
    /// Remaining credit of the tenant at the rotation front; 0 means
    /// "reload from the weight table on the next pop".
    front_credit: u32,
}

impl FairQueue {
    /// An empty queue holding at most `capacity` undispatched jobs
    /// (`capacity == 0` means unbounded).
    pub fn new(capacity: usize) -> FairQueue {
        FairQueue {
            lanes: BTreeMap::new(),
            rotation: VecDeque::new(),
            queued: 0,
            capacity,
            weights: BTreeMap::new(),
            front_credit: 0,
        }
    }

    /// Sets a tenant's service weight: how many of its queued jobs one
    /// rotation turn may serve before the rotation moves on. Weights below
    /// 1 are clamped to 1.
    pub fn set_weight(&mut self, tenant: TenantId, weight: u32) {
        self.weights.insert(tenant, weight.max(1));
    }

    /// The tenant's service weight (1 unless set).
    pub fn weight(&self, tenant: TenantId) -> u32 {
        self.weights.get(&tenant).copied().unwrap_or(1)
    }

    /// Total queued (undispatched) jobs.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.capacity != 0 && self.queued >= self.capacity
    }

    /// The configured capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued jobs for one tenant's lane.
    pub fn lane_len(&self, tenant: TenantId) -> usize {
        self.lanes.get(&tenant).map_or(0, VecDeque::len)
    }

    /// Enqueues a job on its tenant's lane. Returns the job back when the
    /// queue is at capacity so callers can apply their backpressure policy.
    pub fn push(&mut self, seq: u64, job: JobSpec) -> Result<(), JobSpec> {
        self.push_at(seq, job, None)
    }

    /// [`FairQueue::push`] with a submission timestamp for queue-wait
    /// tracing (see [`QueuedJob::submitted_at`]).
    pub fn push_at(
        &mut self,
        seq: u64,
        job: JobSpec,
        submitted_at: Option<Instant>,
    ) -> Result<(), JobSpec> {
        if self.is_full() {
            return Err(job);
        }
        let tenant = job.tenant;
        let lane = self.lanes.entry(tenant).or_default();
        if lane.is_empty() {
            // Tenant (re)enters the rotation at the back: newly active
            // tenants wait one round rather than jumping the queue.
            self.rotation.push_back(tenant);
        }
        lane.push_back(QueuedJob {
            seq,
            job,
            submitted_at,
            attempt: 1,
        });
        self.queued += 1;
        Ok(())
    }

    /// Re-enqueues a job reclaimed from a dead, hung or expired worker.
    /// Unlike [`FairQueue::push_at`] this ignores capacity: the slot was
    /// already admitted when the job was first accepted, so bouncing a
    /// reclaimed job off a full queue would lose admitted work. The job
    /// keeps its original sequence number (release order is unchanged) and
    /// carries the attempt the next execution will be.
    pub fn requeue(&mut self, seq: u64, job: JobSpec, attempt: u32) {
        let tenant = job.tenant;
        let lane = self.lanes.entry(tenant).or_default();
        if lane.is_empty() {
            self.rotation.push_back(tenant);
        }
        lane.push_back(QueuedJob {
            seq,
            job,
            submitted_at: None,
            attempt,
        });
        self.queued += 1;
    }

    /// Bulk [`FairQueue::push_at`]: enqueues `jobs` with consecutive
    /// sequence numbers starting at `first_seq`, touching each tenant lane
    /// once per run of equal-tenant jobs rather than once per job. Stops
    /// and returns `Err(enqueued_count)` if capacity runs out mid-slice
    /// (callers admit the slice under their own accounting first, so this
    /// is defensive).
    pub fn push_batch_at(
        &mut self,
        first_seq: u64,
        jobs: &[JobSpec],
        submitted_at: Option<Instant>,
    ) -> Result<(), usize> {
        let mut i = 0;
        while i < jobs.len() {
            if self.is_full() {
                return Err(i);
            }
            let tenant = jobs[i].tenant;
            let mut end = i + 1;
            while end < jobs.len() && jobs[end].tenant == tenant {
                end += 1;
            }
            if self.capacity != 0 {
                end = end.min(i + (self.capacity - self.queued));
            }
            let lane = self.lanes.entry(tenant).or_default();
            if lane.is_empty() {
                self.rotation.push_back(tenant);
            }
            for (offset, job) in jobs[i..end].iter().enumerate() {
                lane.push_back(QueuedJob {
                    seq: first_seq + (i + offset) as u64,
                    job: job.clone(),
                    submitted_at,
                    attempt: 1,
                });
            }
            self.queued += end - i;
            i = end;
        }
        Ok(())
    }

    /// Dequeues the next job round-robin across tenants: serves the front
    /// tenant of the rotation, then — once that tenant's per-turn credit
    /// (its weight) is spent or its lane drains — rotates it to the back.
    pub fn pop(&mut self) -> Option<QueuedJob> {
        let tenant = *self.rotation.front()?;
        if self.front_credit == 0 {
            self.front_credit = self.weight(tenant);
        }
        let lane = self.lanes.get_mut(&tenant).expect("rotation lane exists");
        let queued = lane.pop_front().expect("rotation lane non-empty");
        self.front_credit -= 1;
        if lane.is_empty() {
            self.lanes.remove(&tenant);
            self.rotation.pop_front();
            self.front_credit = 0;
        } else if self.front_credit == 0 {
            self.rotation.rotate_left(1);
        }
        self.queued -= 1;
        Some(queued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustmeter_workloads::Workload;

    fn job(id: u64, tenant: u32) -> JobSpec {
        JobSpec::clean(id, TenantId(tenant), Workload::LoopO, 0.001)
    }

    #[test]
    fn pop_is_fifo_within_one_tenant() {
        let mut queue = FairQueue::new(0);
        for id in 0..5 {
            queue.push(id, job(id, 1)).unwrap();
        }
        let ids: Vec<u64> = std::iter::from_fn(|| queue.pop()).map(|q| q.seq).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_round_robins_across_tenants() {
        let mut queue = FairQueue::new(0);
        // Greedy tenant 1 enqueues 4 jobs before tenants 2 and 3 appear.
        for id in 0..4 {
            queue.push(id, job(id, 1)).unwrap();
        }
        queue.push(4, job(4, 2)).unwrap();
        queue.push(5, job(5, 3)).unwrap();
        let tenants: Vec<u32> = std::iter::from_fn(|| queue.pop())
            .map(|q| q.job.tenant.0)
            .collect();
        assert_eq!(tenants, vec![1, 2, 3, 1, 1, 1]);
    }

    #[test]
    fn capacity_bounds_total_not_per_lane() {
        let mut queue = FairQueue::new(2);
        queue.push(0, job(0, 1)).unwrap();
        queue.push(1, job(1, 2)).unwrap();
        assert!(queue.is_full());
        let rejected = queue.push(2, job(2, 3)).unwrap_err();
        assert_eq!(rejected.id.0, 2);
        queue.pop().unwrap();
        assert!(!queue.is_full());
        queue.push(2, job(2, 3)).unwrap();
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn lane_len_tracks_per_tenant_backlog() {
        let mut queue = FairQueue::new(0);
        for id in 0..3 {
            queue.push(id, job(id, 7)).unwrap();
        }
        assert_eq!(queue.lane_len(TenantId(7)), 3);
        assert_eq!(queue.lane_len(TenantId(8)), 0);
        queue.pop();
        assert_eq!(queue.lane_len(TenantId(7)), 2);
    }

    #[test]
    fn push_batch_matches_sequential_pushes() {
        let mut one_by_one = FairQueue::new(0);
        let mut batched = FairQueue::new(0);
        let jobs: Vec<JobSpec> = (0..8).map(|id| job(id, (id % 3) as u32 + 1)).collect();
        for (seq, j) in jobs.iter().enumerate() {
            one_by_one.push(seq as u64, j.clone()).unwrap();
        }
        batched.push_batch_at(0, &jobs, None).unwrap();
        assert_eq!(batched.len(), one_by_one.len());
        let a: Vec<(u64, u32)> = std::iter::from_fn(|| one_by_one.pop())
            .map(|q| (q.seq, q.job.tenant.0))
            .collect();
        let b: Vec<(u64, u32)> = std::iter::from_fn(|| batched.pop())
            .map(|q| (q.seq, q.job.tenant.0))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn push_batch_stops_at_capacity() {
        let mut queue = FairQueue::new(3);
        let jobs: Vec<JobSpec> = (0..5).map(|id| job(id, 1)).collect();
        assert_eq!(queue.push_batch_at(0, &jobs, None), Err(3));
        assert_eq!(queue.len(), 3);
        assert_eq!(queue.pop().unwrap().seq, 0);
    }

    #[test]
    fn requeue_ignores_capacity_and_preserves_seq() {
        let mut queue = FairQueue::new(1);
        queue.push(7, job(7, 1)).unwrap();
        assert!(queue.is_full());
        // A reclaimed job re-enters even though the queue is at capacity.
        queue.requeue(3, job(3, 2), 2);
        assert_eq!(queue.len(), 2);
        let reclaimed = std::iter::from_fn(|| queue.pop())
            .find(|q| q.seq == 3)
            .unwrap();
        assert_eq!(reclaimed.attempt, 2);
        // Fresh pushes always start at attempt 1.
        queue.push(8, job(8, 1)).unwrap();
        assert_eq!(queue.pop().unwrap().attempt, 1);
    }

    #[test]
    fn weighted_pop_serves_shares_per_rotation_turn() {
        let mut queue = FairQueue::new(0);
        queue.set_weight(TenantId(1), 2);
        for id in 0..4 {
            queue.push(id, job(id, 1)).unwrap();
        }
        for id in 4..8 {
            queue.push(id, job(id, 2)).unwrap();
        }
        let tenants: Vec<u32> = std::iter::from_fn(|| queue.pop())
            .map(|q| q.job.tenant.0)
            .collect();
        // Tenant 1 (weight 2) gets two slots per turn, tenant 2 one.
        assert_eq!(tenants, vec![1, 1, 2, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn tenant_reentering_rotation_waits_a_round() {
        let mut queue = FairQueue::new(0);
        queue.push(0, job(0, 1)).unwrap();
        queue.push(1, job(1, 2)).unwrap();
        // Tenant 1 drains, then resubmits while tenant 2 still waits.
        assert_eq!(queue.pop().unwrap().job.tenant, TenantId(1));
        queue.push(2, job(2, 1)).unwrap();
        // Tenant 2 is served before tenant 1's new job.
        assert_eq!(queue.pop().unwrap().job.tenant, TenantId(2));
        assert_eq!(queue.pop().unwrap().job.tenant, TenantId(1));
    }
}
