//! Local stub of `serde_derive` for an offline build environment.
//!
//! The real serde_derive generates visitor-based (de)serializers; this stub
//! targets the vendored `serde` crate's simpler `Value`-tree model. It parses
//! the derive input by walking raw token trees (no `syn`/`quote` available)
//! and emits the impl as a source string. Supported shapes are exactly the
//! ones this workspace uses: non-generic structs (named, tuple, unit) and
//! enums whose variants are unit, named-field, or tuple.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::iter::Peekable;

/// Derives `serde::Serialize` (the vendored value-model flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the vendored value-model flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attrs_and_vis(iter: &mut Tokens) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The attribute body: #[...]
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // Optional restriction: pub(crate), pub(super), ...
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Consumes tokens up to (and including) the next comma that is not nested
/// inside `<...>` generic arguments. Groups (parens, brackets, braces) are
/// single token trees, so only angle brackets need explicit depth tracking.
fn skip_past_comma(iter: &mut Tokens) {
    let mut angle_depth = 0usize;
    for tt in iter.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                // Consume the `:` and the type, up to the field separator.
                skip_past_comma(&mut iter);
            }
            Some(other) => panic!("unexpected token in struct body: {other}"),
            None => break,
        }
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut in_segment = false;
    let mut angle_depth = 0usize;
    for tt in body {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    count += 1;
                    in_segment = false;
                    continue;
                }
                _ => {}
            }
        }
        in_segment = true;
    }
    if in_segment {
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("unexpected token in enum body: {other}"),
            None => break,
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Consume a possible explicit discriminant and the trailing comma.
        skip_past_comma(&mut iter);
        variants.push((name, fields));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("stub serde_derive does not support generic types ({name})");
    }
    let shape = match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => panic!("unexpected struct body: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body: {other:?}"),
        },
        other => panic!("derive target must be a struct or enum, got `{other}`"),
    };
    Item { name, shape }
}

fn named_to_value(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let mut out = String::from("::serde::Value::Map(::std::vec![");
    for f in fields {
        let _ = write!(
            out,
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({})),",
            access(f)
        );
    }
    out.push_str("])");
    out
}

/// Statement sequence streaming named fields as `"f1":v1,"f2":v2` (no
/// surrounding braces), with `access` mapping a field name to the
/// expression that borrows it.
fn named_write_json(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        let comma = if i > 0 { "," } else { "" };
        let _ = write!(
            out,
            "out.push_str(\"{comma}\\\"{f}\\\":\"); ::serde::Serialize::write_json({}, out);",
            access(f)
        );
    }
    out
}

/// The body of the generated `write_json`: streams compact JSON with no
/// intermediate `Value` tree, byte-identical to printing `to_value()`.
fn gen_write_json(item: &Item) -> String {
    let name = &item.name;
    match &item.shape {
        Shape::Struct(Fields::Unit) => "out.push_str(\"null\");".to_string(),
        Shape::Struct(Fields::Named(fields)) => {
            if fields.is_empty() {
                return "out.push_str(\"{}\");".to_string();
            }
            format!(
                "out.push('{{'); {} out.push('}}');",
                named_write_json(fields, |f| format!("&self.{f}"))
            )
        }
        // Newtype structs serialize transparently, like real serde.
        Shape::Struct(Fields::Tuple(1)) => {
            "::serde::Serialize::write_json(&self.0, out);".to_string()
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let mut out = String::from("out.push('[');");
            for i in 0..*n {
                if i > 0 {
                    out.push_str("out.push(',');");
                }
                let _ = write!(out, "::serde::Serialize::write_json(&self.{i}, out);");
            }
            out.push_str("out.push(']');");
            out
        }
        Shape::Enum(variants) => {
            let mut out = String::from("match self {");
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        let _ = write!(out, "{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),");
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let inner = if fs.is_empty() {
                            "out.push_str(\"{}\");".to_string()
                        } else {
                            format!(
                                "out.push('{{'); {} out.push('}}');",
                                named_write_json(fs, |f| f.to_string())
                            )
                        };
                        let _ = write!(
                            out,
                            "{name}::{v} {{ {binds} }} => {{ \
                             out.push_str(\"{{\\\"{v}\\\":\"); {inner} out.push('}}'); }}"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::write_json(f0, out);".to_string()
                        } else {
                            let mut s = String::from("out.push('[');");
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    s.push_str("out.push(',');");
                                }
                                let _ = write!(s, "::serde::Serialize::write_json({b}, out);");
                            }
                            s.push_str("out.push(']');");
                            s
                        };
                        let _ = write!(
                            out,
                            "{name}::{v}({}) => {{ \
                             out.push_str(\"{{\\\"{v}\\\":\"); {inner} out.push('}}'); }}",
                            binds.join(", ")
                        );
                    }
                }
            }
            out.push('}');
            out
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Struct(Fields::Named(fields)) => named_to_value(fields, |f| format!("&self.{f}")),
        // Newtype structs serialize transparently, like real serde.
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let mut out = String::from("::serde::Value::Seq(::std::vec![");
            for i in 0..*n {
                let _ = write!(out, "::serde::Serialize::to_value(&self.{i}),");
            }
            out.push_str("])");
            out
        }
        Shape::Enum(variants) => {
            let mut out = String::from("match self {");
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        let _ = write!(
                            out,
                            "{name}::{v} => \
                             ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                        );
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let inner = named_to_value(fs, |f| f.to_string());
                        let _ = write!(
                            out,
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), {inner})]),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let mut s = String::from("::serde::Value::Seq(::std::vec![");
                            for b in &binds {
                                let _ = write!(s, "::serde::Serialize::to_value({b}),");
                            }
                            s.push_str("])");
                            s
                        };
                        let _ = write!(
                            out,
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), {inner})]),",
                            binds.join(", ")
                        );
                    }
                }
            }
            out.push('}');
            out
        }
    };
    let write_json = gen_write_json(item);
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} \
         fn write_json(&self, out: &mut ::std::string::String) {{ {write_json} }} }}"
    )
}

fn named_from_value(prefix: &str, fields: &[String], src: &str) -> String {
    let mut out = format!("::std::result::Result::Ok({prefix} {{");
    for f in fields {
        let _ = write!(
            out,
            "{f}: ::serde::Deserialize::from_value({src}.field_or_null(\"{f}\"))?,"
        );
    }
    out.push_str("})");
    out
}

fn tuple_from_value(prefix: &str, n: usize, src: &str) -> String {
    if n == 1 {
        return format!(
            "::std::result::Result::Ok({prefix}(::serde::Deserialize::from_value({src})?))"
        );
    }
    let mut out = format!("{{ let items = {src}.as_seq({n})?; ::std::result::Result::Ok({prefix}(");
    for i in 0..n {
        let _ = write!(out, "::serde::Deserialize::from_value(&items[{i}])?,");
    }
    out.push_str(")) }");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Shape::Struct(Fields::Named(fields)) => named_from_value(name, fields, "v"),
        Shape::Struct(Fields::Tuple(n)) => tuple_from_value(name, *n, "v"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
                        );
                    }
                    Fields::Named(fs) => {
                        let inner = named_from_value(&format!("{name}::{v}"), fs, "inner");
                        let _ = write!(data_arms, "\"{v}\" => {inner},");
                    }
                    Fields::Tuple(n) => {
                        let inner = tuple_from_value(&format!("{name}::{v}"), *n, "inner");
                        let _ = write!(data_arms, "\"{v}\" => {inner},");
                    }
                }
            }
            format!(
                "match v {{ \
                 ::serde::Value::Str(s) => match s.as_str() {{ \
                   {unit_arms} \
                   other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))), \
                 }}, \
                 ::serde::Value::Map(m) if m.len() == 1 => {{ \
                   let (tag, inner) = &m[0]; \
                   let _ = inner; \
                   match tag.as_str() {{ \
                     {data_arms} \
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                       ::std::format!(\"unknown variant `{{other}}` for {name}\"))), \
                   }} \
                 }}, \
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                   ::std::format!(\"cannot deserialize {name} from {{other:?}}\"))), \
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{ let _ = v; {body} }} }}"
    )
}
