//! The attacker programs: processes the dishonest operator runs alongside
//! the victim.

use trustmeter_core::TaskId;
use trustmeter_kernel::{Op, OpOutcome, Program, ProgramCtx, SyscallOp};
use trustmeter_sim::{CpuFrequency, Cycles, Nanos};

fn us(freq: CpuFrequency, micros: f64) -> Cycles {
    freq.cycles_for(Nanos::from_secs_f64(micros / 1e6))
}

/// The process-scheduling attacker (paper §IV-B1): repeatedly forks a child
/// that does (almost) nothing and exits, and waits for it. Both parent and
/// child relinquish the CPU many times per jiffy, so the timer tick almost
/// always finds the victim current and the attacker's CPU consumption is
/// charged to the victim.
pub struct ForkAttacker {
    freq: CpuFrequency,
    forks_left: u64,
    parent_us: f64,
    child_us: f64,
    nice: i8,
    state: u8,
}

impl ForkAttacker {
    /// Creates the attacker. `forks` is the number of fork/wait cycles (the
    /// paper uses 2²¹), `parent_us`/`child_us` the user-mode work per cycle
    /// in parent and child.
    pub fn new(forks: u64, parent_us: f64, child_us: f64, nice: i8) -> ForkAttacker {
        ForkAttacker {
            freq: CpuFrequency::E7200,
            forks_left: forks,
            parent_us,
            child_us,
            nice,
            state: 0,
        }
    }

    /// The paper's configuration (2²¹ forks) scaled by `scale`.
    pub fn paper_default(scale: f64, nice: i8) -> ForkAttacker {
        let forks = ((1u64 << 21) as f64 * scale).round().max(1.0) as u64;
        ForkAttacker::new(forks, 40.0, 20.0, nice)
    }
}

impl Program for ForkAttacker {
    fn name(&self) -> &str {
        "Fork"
    }

    fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> Option<Op> {
        if self.forks_left == 0 {
            return None;
        }
        match self.state {
            0 => {
                self.state = 1;
                Some(Op::Compute {
                    cycles: us(self.freq, self.parent_us),
                })
            }
            1 => {
                self.state = 2;
                let child = Box::new(ForkChild {
                    freq: self.freq,
                    work_us: self.child_us,
                    done: false,
                });
                Some(Op::Syscall(SyscallOp::Fork {
                    child,
                    nice: self.nice,
                }))
            }
            _ => {
                self.state = 0;
                self.forks_left -= 1;
                Some(Op::Syscall(SyscallOp::Wait))
            }
        }
    }
}

/// The do-nothing child forked by [`ForkAttacker`].
struct ForkChild {
    freq: CpuFrequency,
    work_us: f64,
    done: bool,
}

impl Program for ForkChild {
    fn name(&self) -> &str {
        "Fork-child"
    }

    fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> Option<Op> {
        if self.done {
            return None;
        }
        self.done = true;
        Some(Op::Compute {
            cycles: us(self.freq, self.work_us),
        })
    }
}

/// The execution-thrashing attacker (paper §IV-B2): attaches to the victim
/// with ptrace, arms a hardware breakpoint on one of its hot variables, and
/// then continues/waits in a loop, forcing a debug exception, a SIGTRAP,
/// two context switches and a ptrace request per access.
pub struct Thrasher {
    target: TaskId,
    breakpoint_addr: u64,
    state: ThrasherState,
    /// Number of trap rounds served (for tests / reporting).
    pub rounds: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThrasherState {
    Attach,
    WaitAttachStop,
    SetBreakpoint,
    Cont,
    WaitTrap,
    Done,
}

impl Thrasher {
    /// Creates a thrasher targeting `target`, arming a breakpoint at
    /// `breakpoint_addr` (the victim's hot variable).
    pub fn new(target: TaskId, breakpoint_addr: u64) -> Thrasher {
        Thrasher {
            target,
            breakpoint_addr,
            state: ThrasherState::Attach,
            rounds: 0,
        }
    }
}

impl Program for Thrasher {
    fn name(&self) -> &str {
        "Thrasher"
    }

    fn next_op(&mut self, ctx: &mut ProgramCtx<'_>) -> Option<Op> {
        use ThrasherState::*;
        loop {
            match self.state {
                Attach => {
                    self.state = WaitAttachStop;
                    return Some(Op::Syscall(SyscallOp::PtraceAttach {
                        target: self.target,
                    }));
                }
                WaitAttachStop => {
                    if ctx.last == OpOutcome::Failed {
                        self.state = Done;
                        continue;
                    }
                    self.state = SetBreakpoint;
                    return Some(Op::Syscall(SyscallOp::Wait));
                }
                SetBreakpoint => {
                    if matches!(
                        ctx.last,
                        OpOutcome::ChildExited(_) | OpOutcome::NoChildren | OpOutcome::Failed
                    ) {
                        self.state = Done;
                        continue;
                    }
                    self.state = Cont;
                    return Some(Op::Syscall(SyscallOp::PtraceSetBreakpoint {
                        target: self.target,
                        addr: self.breakpoint_addr,
                    }));
                }
                Cont => {
                    if ctx.last == OpOutcome::Failed {
                        self.state = Done;
                        continue;
                    }
                    self.state = WaitTrap;
                    return Some(Op::Syscall(SyscallOp::PtraceCont {
                        target: self.target,
                    }));
                }
                WaitTrap => match ctx.last {
                    OpOutcome::ChildStopped(_) => {
                        self.rounds += 1;
                        self.state = Cont;
                        continue;
                    }
                    OpOutcome::ChildExited(_) | OpOutcome::NoChildren | OpOutcome::Failed => {
                        self.state = Done;
                        continue;
                    }
                    _ => {
                        return Some(Op::Syscall(SyscallOp::Wait));
                    }
                },
                Done => return None,
            }
        }
    }
}

/// The exception-flooding attacker (paper §IV-B4): allocates more memory
/// than the machine has and keeps writing and re-reading it, so the global
/// reclaimer evicts the victim's pages and every victim memory access turns
/// into a page fault.
pub struct MemoryHog {
    slab_pages: u64,
    slabs_left: u64,
    touch_rounds_left: u64,
    touch_pages: u64,
    compute_per_round: Cycles,
    phase: u8,
}

impl MemoryHog {
    /// Creates a hog that allocates `total_pages` (in slabs) and then keeps
    /// touching `touch_pages` of them for `rounds` rounds.
    pub fn new(total_pages: u64, touch_pages: u64, rounds: u64) -> MemoryHog {
        let slab_pages = 64 * 1024;
        let slabs = total_pages.div_ceil(slab_pages).max(1);
        MemoryHog {
            slab_pages,
            slabs_left: slabs,
            touch_rounds_left: rounds,
            touch_pages,
            compute_per_round: us(CpuFrequency::E7200, 200.0),
            phase: 0,
        }
    }

    /// The paper's configuration: exhaust a 2 GiB machine (the hog requests
    /// more than physical memory) and keep rewriting it while the victim
    /// runs for about `victim_secs` seconds.
    pub fn paper_default(physical_pages: u64, victim_secs: f64) -> MemoryHog {
        // Hog 1.5x physical memory; touch a big chunk every ~10 ms.
        let rounds = (victim_secs * 100.0).max(1.0) as u64;
        MemoryHog::new(physical_pages * 3 / 2, physical_pages / 8, rounds)
    }
}

impl Program for MemoryHog {
    fn name(&self) -> &str {
        "MemHog"
    }

    fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> Option<Op> {
        match self.phase {
            0 => {
                if self.slabs_left == 0 {
                    self.phase = 1;
                    return self.next_op(_ctx);
                }
                self.slabs_left -= 1;
                Some(Op::AllocMemory {
                    pages: self.slab_pages,
                })
            }
            1 => {
                self.phase = 2;
                Some(Op::TouchMemory {
                    pages: self.touch_pages,
                })
            }
            _ => {
                if self.touch_rounds_left == 0 {
                    return None;
                }
                self.touch_rounds_left -= 1;
                self.phase = 1;
                Some(Op::Compute {
                    cycles: self.compute_per_round,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustmeter_sim::SimRng;

    fn drain(p: &mut dyn Program, limit: usize) -> Vec<String> {
        let mut rng = SimRng::seed_from(1);
        let mut out = Vec::new();
        for _ in 0..limit {
            let mut ctx = ProgramCtx {
                pid: TaskId(9),
                last: OpOutcome::Completed,
                rng: &mut rng,
            };
            match p.next_op(&mut ctx) {
                Some(op) => out.push(format!("{op:?}")),
                None => break,
            }
        }
        out
    }

    #[test]
    fn fork_attacker_cycles_fork_and_wait() {
        let mut a = ForkAttacker::new(3, 40.0, 20.0, -10);
        let ops = drain(&mut a, 100);
        let forks = ops.iter().filter(|o| o.contains("fork")).count();
        let waits = ops.iter().filter(|o| o.contains("wait")).count();
        assert_eq!(forks, 3);
        assert_eq!(waits, 3);
        assert_eq!(ops.len(), 9); // compute + fork + wait per cycle
    }

    #[test]
    fn fork_attacker_paper_default_scales() {
        let a = ForkAttacker::paper_default(1.0, 0);
        assert_eq!(a.forks_left, 1 << 21);
        let small = ForkAttacker::paper_default(0.001, 0);
        assert!(small.forks_left >= 1 && small.forks_left < 1 << 21);
    }

    #[test]
    fn thrasher_attaches_then_loops() {
        let mut t = Thrasher::new(TaskId(3), 0xdead);
        let mut rng = SimRng::seed_from(1);
        // Attach.
        let mut ctx = ProgramCtx {
            pid: TaskId(9),
            last: OpOutcome::None,
            rng: &mut rng,
        };
        assert!(format!("{:?}", t.next_op(&mut ctx).unwrap()).contains("ATTACH"));
        // Wait for the attach stop.
        let mut ctx = ProgramCtx {
            pid: TaskId(9),
            last: OpOutcome::Completed,
            rng: &mut rng,
        };
        assert!(format!("{:?}", t.next_op(&mut ctx).unwrap()).contains("wait"));
        // Breakpoint after the stop is observed.
        let mut ctx = ProgramCtx {
            pid: TaskId(9),
            last: OpOutcome::ChildStopped(TaskId(3)),
            rng: &mut rng,
        };
        assert!(format!("{:?}", t.next_op(&mut ctx).unwrap()).contains("POKEUSER"));
        // Cont.
        let mut ctx = ProgramCtx {
            pid: TaskId(9),
            last: OpOutcome::Completed,
            rng: &mut rng,
        };
        assert!(format!("{:?}", t.next_op(&mut ctx).unwrap()).contains("CONT"));
        // Wait for a trap, observe it, cont again.
        let mut ctx = ProgramCtx {
            pid: TaskId(9),
            last: OpOutcome::Completed,
            rng: &mut rng,
        };
        assert!(format!("{:?}", t.next_op(&mut ctx).unwrap()).contains("wait"));
        let mut ctx = ProgramCtx {
            pid: TaskId(9),
            last: OpOutcome::ChildStopped(TaskId(3)),
            rng: &mut rng,
        };
        assert!(format!("{:?}", t.next_op(&mut ctx).unwrap()).contains("CONT"));
        assert_eq!(t.rounds, 1);
        // Tracee exits: attacker finishes.
        let mut ctx = ProgramCtx {
            pid: TaskId(9),
            last: OpOutcome::ChildExited(TaskId(3)),
            rng: &mut rng,
        };
        // After cont we are in WaitTrap; a ChildExited ends the program.
        assert!(t.next_op(&mut ctx).is_none());
    }

    #[test]
    fn thrasher_gives_up_on_failed_attach() {
        let mut t = Thrasher::new(TaskId(3), 0xdead);
        let mut rng = SimRng::seed_from(1);
        let mut ctx = ProgramCtx {
            pid: TaskId(9),
            last: OpOutcome::None,
            rng: &mut rng,
        };
        let _ = t.next_op(&mut ctx); // attach
        let mut ctx = ProgramCtx {
            pid: TaskId(9),
            last: OpOutcome::Failed,
            rng: &mut rng,
        };
        assert!(t.next_op(&mut ctx).is_none());
    }

    #[test]
    fn memory_hog_allocates_then_thrashes() {
        let mut h = MemoryHog::new(100_000, 10_000, 3);
        let ops = drain(&mut h, 100);
        let allocs = ops.iter().filter(|o| o.contains("AllocMemory")).count();
        let touches = ops.iter().filter(|o| o.contains("TouchMemory")).count();
        assert!(allocs >= 1);
        assert!(touches >= 3);
    }

    #[test]
    fn memory_hog_paper_default_overcommits() {
        let h = MemoryHog::paper_default(512 * 1024, 1.0);
        let total = h.slabs_left * h.slab_pages;
        assert!(total > 512 * 1024);
    }
}
