//! Integration tests for the `trustmeter-fleet` metering service: a
//! 100+-job multi-tenant batch across ≥4 shards, ledger arithmetic,
//! shard-count determinism, the metrics exposition, and the streaming
//! ingestion pipeline (backpressure, per-tenant fairness, streamed-vs-batch
//! bit-identical results).

use trustmeter::prelude::*;

const SCALE: f64 = 0.001;

/// A mixed batch: four tenants, all four workloads, clean runs and a mix
/// of launch-time and runtime attacks.
fn batch(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let tenant = TenantId((i % 4) as u32 + 1);
            let workload = Workload::ALL[(i % 4) as usize];
            match i % 5 {
                0 => JobSpec::attacked(i, tenant, workload, SCALE, AttackSpec::Shell),
                1 => JobSpec::attacked(
                    i,
                    tenant,
                    workload,
                    SCALE,
                    AttackSpec::Scheduling { nice: -10 },
                ),
                _ => JobSpec::clean(i, tenant, workload, SCALE),
            }
        })
        .collect()
}

#[test]
fn hundred_jobs_across_four_shards_bill_and_audit() {
    let jobs = batch(100);
    let mut service = FleetService::new(FleetConfig::new(4, 77));
    for id in 1..=4u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    let report = service.process(&jobs);
    assert_eq!(report.records.len(), 100);
    assert_eq!(report.verdicts.len(), 100);

    // Every tenant has an account; per-tenant totals equal the sum of the
    // per-run invoices, and the posted run count matches the submissions.
    let mut posted = 0;
    for account in report.ledger.iter() {
        posted += account.runs;
        assert!((account.billed_charge - account.invoice_sum()).abs() < 1e-9);
        assert_eq!(account.invoices.len() as u64, account.runs);
        assert!(account.billed_charge > 0.0);
    }
    assert_eq!(posted, 100);

    // Attacked runs are flagged, clean runs are not (ids 0,1 mod 5 attack).
    for (record, verdict) in report.records.iter().zip(&report.verdicts) {
        assert_eq!(
            record.job.attack.is_some(),
            !verdict.is_clean(),
            "job {}",
            record.job.id
        );
    }

    // The attacks inflate the fleet-wide bill above ground truth.
    assert!(report.ledger.total_billed_charge() > report.ledger.total_truth_charge());
}

#[test]
fn shard_count_does_not_change_results() {
    let jobs = batch(24);
    let run = |shards: usize| Fleet::new(FleetConfig::new(shards, 123)).run(&jobs);
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    assert_eq!(
        one, two,
        "1-shard and 2-shard results must be bit-identical"
    );
    assert_eq!(
        one, eight,
        "1-shard and 8-shard results must be bit-identical"
    );
}

#[test]
fn full_service_is_deterministic_across_shard_counts() {
    let jobs = batch(30);
    let run = |shards: usize| {
        let mut service = FleetService::new(FleetConfig::new(shards, 7));
        service.register(Tenant::new(TenantId(1), "a", RateCard::per_cpu_hour(0.10)));
        let report = service.process(&jobs);
        (report, service.metrics_text())
    };
    let (report_a, metrics_a) = run(1);
    let (report_b, metrics_b) = run(4);
    assert_eq!(report_a, report_b);
    assert_eq!(
        metrics_a, metrics_b,
        "metrics exposition must be byte-identical"
    );
}

#[test]
fn metrics_exposition_contains_usage_and_anomaly_counters() {
    let jobs = batch(20);
    let mut service = FleetService::new(FleetConfig::new(4, 3));
    let _ = service.process(&jobs);
    let text = service.metrics_text();
    assert!(text.contains("# TYPE cpu_usage counter"), "dump:\n{text}");
    assert!(text.contains("cpu_usage{"), "dump:\n{text}");
    assert!(text.contains("state=\"user\""), "dump:\n{text}");
    assert!(text.contains("state=\"system\""), "dump:\n{text}");
    assert!(
        text.contains("# TYPE fleet_anomalies counter"),
        "dump:\n{text}"
    );
    assert!(text.contains("kind=\"overbilled\""), "dump:\n{text}");
    assert!(text.contains("# TYPE fleet_jobs counter"), "dump:\n{text}");
}

#[test]
fn ledger_survives_multiple_batches() {
    let mut service = FleetService::new(FleetConfig::new(2, 11));
    let first = batch(10);
    let second: Vec<JobSpec> = batch(10)
        .into_iter()
        .map(|mut job| {
            job.id = JobId(job.id.0 + 10);
            job
        })
        .collect();
    service.process(&first);
    let report = service.process(&second);
    let posted: u64 = report.ledger.iter().map(|a| a.runs).sum();
    assert_eq!(posted, 20, "ledger must accumulate across batches");
}

/// Streams `jobs` through a fresh service with `workers` workers
/// (single-threaded submission, so submission order equals batch order)
/// and returns the report plus the metrics text.
fn stream_jobs(jobs: &[JobSpec], workers: usize) -> (FleetReport, String) {
    let mut service = FleetService::new(FleetConfig::new(workers, 77));
    for id in 1..=4u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    let mut stream = service.stream(IngestConfig::new(workers));
    for job in jobs {
        stream.submit(job.clone()).expect("queue sized for batch");
        // Interleave pumping with submission, as a live service would.
        stream.pump();
    }
    let report = stream.finish();
    (report, service.metrics_text())
}

#[test]
fn streamed_run_is_bit_identical_to_batch_for_1_2_8_workers() {
    let jobs = batch(24);
    let mut batch_service = FleetService::new(FleetConfig::new(4, 77));
    for id in 1..=4u32 {
        batch_service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    let batch_report = batch_service.process(&jobs);

    let mut streamed_metrics = Vec::new();
    for workers in [1usize, 2, 8] {
        let (report, metrics) = stream_jobs(&jobs, workers);
        // Ledgers, audit verdicts and invoice totals match the batch path
        // bit for bit, whatever the worker count.
        assert_eq!(
            report, batch_report,
            "streamed report must equal batch report at {workers} workers"
        );
        assert_eq!(
            report.ledger.total_billed_charge(),
            batch_report.ledger.total_billed_charge()
        );
        streamed_metrics.push(metrics);
    }
    // The streamed metrics exposition is itself deterministic across worker
    // counts: final queue depth and inflight gauges are structurally zero.
    assert_eq!(streamed_metrics[0], streamed_metrics[1]);
    assert_eq!(streamed_metrics[0], streamed_metrics[2]);
}

#[test]
fn full_queue_rejects_submissions_under_reject_policy() {
    let mut service = FleetService::new(FleetConfig::new(1, 5));
    let config = IngestConfig::new(1)
        .with_capacity(3)
        .with_backpressure(BackpressurePolicy::Reject)
        .paused();
    let stream = service.stream(config);
    for id in 0..3 {
        stream
            .submit(JobSpec::clean(id, TenantId(1), Workload::LoopO, SCALE))
            .expect("queue has room");
    }
    // Queue full, dispatch paused: the fourth submission is shed.
    let overflow = stream.submit(JobSpec::clean(3, TenantId(1), Workload::LoopO, SCALE));
    assert_eq!(overflow, Err(SubmitError::QueueFull));
    assert_eq!(stream.stats().rejected, 1);
    stream.resume();
    let report = stream.finish();
    assert_eq!(report.records.len(), 3, "accepted jobs all ran");
    let metrics = service.metrics_text();
    assert!(
        metrics.contains("fleet_submissions_rejected 1"),
        "dump:\n{metrics}"
    );
}

#[test]
fn greedy_tenant_cannot_starve_others() {
    // Stage a backlog while paused: tenant 1 floods 12 jobs before tenants
    // 2 and 3 submit one each. A FIFO queue would run both stragglers last;
    // the fair queue round-robins tenant lanes.
    let mut service = FleetService::new(FleetConfig::new(1, 9));
    let stream = service.stream(IngestConfig::new(1).paused());
    for id in 0..12 {
        stream
            .submit(JobSpec::clean(id, TenantId(1), Workload::LoopO, SCALE))
            .unwrap();
    }
    stream
        .submit(JobSpec::clean(12, TenantId(2), Workload::LoopO, SCALE))
        .unwrap();
    stream
        .submit(JobSpec::clean(13, TenantId(3), Workload::LoopO, SCALE))
        .unwrap();
    stream.resume();
    // Wait for the backlog to drain so the dispatch log is complete.
    while stream.stats().completed < 14 {
        std::thread::yield_now();
    }

    // With one worker the dispatch order is exact: round-robin serves the
    // two modest tenants in positions 1 and 2, not after the flood.
    let dispatched: Vec<u32> = stream.dispatch_log().iter().map(|(_, t)| t.0).collect();
    assert_eq!(
        &dispatched[..3],
        &[1, 2, 3],
        "full dispatch order: {dispatched:?}"
    );
    // Per-tenant completion counts within the first round are bounded:
    // every tenant completed one job before the greedy tenant's second.
    for tenant in [1u32, 2, 3] {
        let served = dispatched[..3].iter().filter(|t| **t == tenant).count();
        assert_eq!(served, 1, "tenant {tenant} in first round: {dispatched:?}");
    }

    // The merged report is still in submission order (ids 0..13), so
    // fairness never costs determinism.
    let report = stream.finish();
    assert_eq!(report.records.len(), 14);
    let ids: Vec<u64> = report.records.iter().map(|r| r.job.id.0).collect();
    assert_eq!(ids, (0..14).collect::<Vec<_>>());
    let summaries: Vec<(u32, u64)> = service
        .auditor()
        .summaries()
        .map(|s| (s.tenant.0, s.runs))
        .collect();
    assert_eq!(summaries, vec![(1, 12), (2, 1), (3, 1)]);
}

/// Audits `records` with a fresh inline-replay-only auditor (references
/// stripped) and returns the verdicts.
fn inline_verdicts(records: &[RunRecord], machine: KernelConfig) -> (Vec<AuditVerdict>, u64) {
    let mut auditor = Auditor::new(machine);
    let verdicts = records
        .iter()
        .map(|record| {
            let mut stripped = record.clone();
            stripped.reference = None;
            auditor.observe(&stripped)
        })
        .collect();
    (verdicts, auditor.replay_count())
}

#[test]
fn precomputed_reference_verdicts_match_inline_replays() {
    let jobs = batch(24);
    let machine = FleetConfig::new(1, 77).machine;

    // The ground truth: every record audited via an inline replay.
    let reference_records = Fleet::new(FleetConfig::new(4, 77)).run(&jobs);
    assert!(
        reference_records.iter().all(|r| r.reference.is_some()),
        "the Always policy precomputes a reference for every job"
    );
    let (inline, inline_replays) = inline_verdicts(&reference_records, machine.clone());
    assert!(inline_replays > 0, "stripped records force inline replays");

    // Batch path: verdicts come from precomputed references, bit-identical
    // to the inline replays.
    let mut batch_service = FleetService::new(FleetConfig::new(4, 77));
    for id in 1..=4u32 {
        batch_service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    let batch_report = batch_service.process(&jobs);
    assert_eq!(batch_report.verdicts, inline);
    assert_eq!(batch_service.auditor().replay_count(), 0);
    assert_eq!(
        batch_service.auditor().reference_hit_count(),
        jobs.len() as u64
    );

    // Streamed path at 1, 2 and 8 workers: same verdicts again.
    for workers in [1usize, 2, 8] {
        let (report, _) = stream_jobs(&jobs, workers);
        assert_eq!(
            report.verdicts, inline,
            "streamed verdicts at {workers} workers must equal inline-replay verdicts"
        );
    }
}

#[test]
fn sampling_policy_skips_are_deterministic_for_a_fixed_fleet_seed() {
    let jobs = batch(30);
    let run = |shards: usize, workers: Option<usize>| {
        let config = FleetConfig::new(shards, 2026).with_sampling(SamplingPolicy::Probability(0.5));
        let mut service = FleetService::new(config);
        let report = match workers {
            None => service.process(&jobs),
            Some(workers) => {
                let mut stream = service.stream(IngestConfig::new(workers));
                for job in &jobs {
                    stream.submit(job.clone()).expect("queue fits batch");
                    stream.pump();
                }
                stream.finish()
            }
        };
        (report, service.metrics_text())
    };

    let (batch_report, _) = run(4, None);
    let audited: Vec<bool> = batch_report.verdicts.iter().map(|v| v.audited).collect();
    assert!(
        audited.iter().any(|a| *a) && audited.iter().any(|a| !*a),
        "p=0.5 over 30 jobs should audit some and skip some: {audited:?}"
    );
    // Skipped attacked runs are not flagged; audited attacked runs are.
    for (record, verdict) in batch_report.records.iter().zip(&batch_report.verdicts) {
        assert_eq!(record.reference.is_some(), verdict.audited);
        if verdict.audited {
            assert_eq!(record.job.attack.is_some(), !verdict.is_clean());
        } else {
            assert!(verdict.is_clean(), "skipped runs assert nothing");
        }
    }

    // The same fleet seed produces the same skip set whatever the shard or
    // worker count, streamed or batch. (Streamed expositions additionally
    // carry the ingest gauges, so they are compared among themselves.)
    let mut streamed_metrics = Vec::new();
    for workers in [1usize, 2, 8] {
        let (report, metrics) = run(8, Some(workers));
        assert_eq!(report, batch_report);
        streamed_metrics.push(metrics);
    }
    assert_eq!(streamed_metrics[0], streamed_metrics[1]);
    assert_eq!(streamed_metrics[0], streamed_metrics[2]);

    // A different fleet seed draws a different skip set (the decision is
    // seeded, not positional). Note the seed also reshuffles kernel seeds,
    // so only the audited flags are compared.
    let other_jobs = batch(30);
    let config = FleetConfig::new(4, 9999).with_sampling(SamplingPolicy::Probability(0.5));
    let mut other_service = FleetService::new(config);
    let other_report = other_service.process(&other_jobs);
    let other_audited: Vec<bool> = other_report.verdicts.iter().map(|v| v.audited).collect();
    assert_ne!(audited, other_audited, "seed must steer the skip set");
}

#[test]
fn fallback_replay_still_detects_shell_overbilling() {
    let fleet = Fleet::new(FleetConfig::new(1, 42));
    let job = JobSpec::attacked(0, TenantId(1), Workload::LoopO, SCALE, AttackSpec::Shell);
    let mut record = fleet.run_one(&job);
    // A record that arrives without a precomputed reference (e.g. produced
    // by an executor with a different sampling policy) still gets the full
    // §VI replay audit.
    record.reference = None;
    let mut auditor = Auditor::new(fleet.config().machine.clone());
    let verdict = auditor.observe(&record);
    assert!(verdict.audited);
    let kinds: Vec<&str> = verdict.anomalies.iter().map(Anomaly::kind).collect();
    assert!(kinds.contains(&"overbilled"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"unexpected-images"), "kinds: {kinds:?}");
    assert_eq!(auditor.replay_count(), 1, "exactly one inline replay");
    assert_eq!(auditor.reference_hit_count(), 0);
}

#[test]
fn audit_cost_counters_are_exported() {
    // Pre-registered at zero on a fresh service.
    let fresh = FleetService::new(FleetConfig::new(1, 1));
    let text = fresh.metrics_text();
    assert!(
        text.contains("# TYPE fleet_audit_replays_total counter"),
        "dump:\n{text}"
    );
    assert!(
        text.contains("fleet_audit_replays_total 0"),
        "dump:\n{text}"
    );
    assert!(
        text.contains("fleet_audit_reference_hits_total 0"),
        "dump:\n{text}"
    );

    // After a batch, the reference hits count every audited run and the
    // replay counter stays at zero (workers precomputed everything).
    let jobs = batch(10);
    let mut service = FleetService::new(FleetConfig::new(2, 3));
    let _ = service.process(&jobs);
    let text = service.metrics_text();
    assert!(
        text.contains("fleet_audit_replays_total 0"),
        "dump:\n{text}"
    );
    assert!(
        text.contains("fleet_audit_reference_hits_total 10"),
        "dump:\n{text}"
    );
}

#[test]
fn fleet_report_serializes() {
    let jobs = batch(4);
    let mut service = FleetService::new(FleetConfig::new(2, 19));
    let report = service.process(&jobs);
    let json = serde_json::to_string(&report).expect("serialize report");
    assert!(json.contains("verdicts"));
    assert!(json.contains("billed_charge"));
}
