//! A minimal signal model.
//!
//! The simulator needs only the signals that participate in the paper's
//! attacks: `SIGSTOP`/`SIGCONT` (ptrace attach and the thrashing cycle),
//! `SIGTRAP` (debug exceptions), `SIGKILL` (OOM kill during the
//! exception-flooding attack) and `SIGCHLD` (the fork/wait scheduling
//! attacker). Delivery cost is charged to the receiving task as system
//! time, mirroring where the work lands on Linux.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The signals modelled by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// Stop the task (not catchable).
    Stop,
    /// Resume a stopped task.
    Cont,
    /// Trace/breakpoint trap.
    Trap,
    /// Kill the task (not catchable).
    Kill,
    /// Child status changed.
    Child,
}

impl Signal {
    /// Conventional Linux signal number.
    pub fn number(self) -> u8 {
        match self {
            Signal::Stop => 19,
            Signal::Cont => 18,
            Signal::Trap => 5,
            Signal::Kill => 9,
            Signal::Child => 17,
        }
    }

    /// Whether delivery of this signal stops the receiving task.
    pub fn stops_task(self) -> bool {
        matches!(self, Signal::Stop | Signal::Trap)
    }

    /// Whether delivery of this signal terminates the receiving task.
    pub fn kills_task(self) -> bool {
        matches!(self, Signal::Kill)
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Signal::Stop => "SIGSTOP",
            Signal::Cont => "SIGCONT",
            Signal::Trap => "SIGTRAP",
            Signal::Kill => "SIGKILL",
            Signal::Child => "SIGCHLD",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_match_linux() {
        assert_eq!(Signal::Kill.number(), 9);
        assert_eq!(Signal::Stop.number(), 19);
        assert_eq!(Signal::Cont.number(), 18);
        assert_eq!(Signal::Trap.number(), 5);
        assert_eq!(Signal::Child.number(), 17);
    }

    #[test]
    fn semantics() {
        assert!(Signal::Stop.stops_task());
        assert!(Signal::Trap.stops_task());
        assert!(!Signal::Cont.stops_task());
        assert!(Signal::Kill.kills_task());
        assert!(!Signal::Child.kills_task());
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", Signal::Trap), "SIGTRAP");
        assert_eq!(format!("{}", Signal::Child), "SIGCHLD");
    }
}
