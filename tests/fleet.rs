//! Integration tests for the `trustmeter-fleet` metering service: a
//! 100+-job multi-tenant batch across ≥4 shards, ledger arithmetic,
//! shard-count determinism, and the metrics exposition.

use trustmeter::prelude::*;

const SCALE: f64 = 0.001;

/// A mixed batch: four tenants, all four workloads, clean runs and a mix
/// of launch-time and runtime attacks.
fn batch(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let tenant = TenantId((i % 4) as u32 + 1);
            let workload = Workload::ALL[(i % 4) as usize];
            match i % 5 {
                0 => JobSpec::attacked(i, tenant, workload, SCALE, AttackSpec::Shell),
                1 => JobSpec::attacked(
                    i,
                    tenant,
                    workload,
                    SCALE,
                    AttackSpec::Scheduling { nice: -10 },
                ),
                _ => JobSpec::clean(i, tenant, workload, SCALE),
            }
        })
        .collect()
}

#[test]
fn hundred_jobs_across_four_shards_bill_and_audit() {
    let jobs = batch(100);
    let mut service = FleetService::new(FleetConfig::new(4, 77));
    for id in 1..=4u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    let report = service.process(&jobs);
    assert_eq!(report.records.len(), 100);
    assert_eq!(report.verdicts.len(), 100);

    // Every tenant has an account; per-tenant totals equal the sum of the
    // per-run invoices, and the posted run count matches the submissions.
    let mut posted = 0;
    for account in report.ledger.iter() {
        posted += account.runs;
        assert!((account.billed_charge - account.invoice_sum()).abs() < 1e-9);
        assert_eq!(account.invoices.len() as u64, account.runs);
        assert!(account.billed_charge > 0.0);
    }
    assert_eq!(posted, 100);

    // Attacked runs are flagged, clean runs are not (ids 0,1 mod 5 attack).
    for (record, verdict) in report.records.iter().zip(&report.verdicts) {
        assert_eq!(
            record.job.attack.is_some(),
            !verdict.is_clean(),
            "job {}",
            record.job.id
        );
    }

    // The attacks inflate the fleet-wide bill above ground truth.
    assert!(report.ledger.total_billed_charge() > report.ledger.total_truth_charge());
}

#[test]
fn shard_count_does_not_change_results() {
    let jobs = batch(24);
    let run = |shards: usize| Fleet::new(FleetConfig::new(shards, 123)).run(&jobs);
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    assert_eq!(
        one, two,
        "1-shard and 2-shard results must be bit-identical"
    );
    assert_eq!(
        one, eight,
        "1-shard and 8-shard results must be bit-identical"
    );
}

#[test]
fn full_service_is_deterministic_across_shard_counts() {
    let jobs = batch(30);
    let run = |shards: usize| {
        let mut service = FleetService::new(FleetConfig::new(shards, 7));
        service.register(Tenant::new(TenantId(1), "a", RateCard::per_cpu_hour(0.10)));
        let report = service.process(&jobs);
        (report, service.metrics_text())
    };
    let (report_a, metrics_a) = run(1);
    let (report_b, metrics_b) = run(4);
    assert_eq!(report_a, report_b);
    assert_eq!(
        metrics_a, metrics_b,
        "metrics exposition must be byte-identical"
    );
}

#[test]
fn metrics_exposition_contains_usage_and_anomaly_counters() {
    let jobs = batch(20);
    let mut service = FleetService::new(FleetConfig::new(4, 3));
    let _ = service.process(&jobs);
    let text = service.metrics_text();
    assert!(text.contains("# TYPE cpu_usage counter"), "dump:\n{text}");
    assert!(text.contains("cpu_usage{"), "dump:\n{text}");
    assert!(text.contains("state=\"user\""), "dump:\n{text}");
    assert!(text.contains("state=\"system\""), "dump:\n{text}");
    assert!(
        text.contains("# TYPE fleet_anomalies counter"),
        "dump:\n{text}"
    );
    assert!(text.contains("kind=\"overbilled\""), "dump:\n{text}");
    assert!(text.contains("# TYPE fleet_jobs counter"), "dump:\n{text}");
}

#[test]
fn ledger_survives_multiple_batches() {
    let mut service = FleetService::new(FleetConfig::new(2, 11));
    let first = batch(10);
    let second: Vec<JobSpec> = batch(10)
        .into_iter()
        .map(|mut job| {
            job.id = JobId(job.id.0 + 10);
            job
        })
        .collect();
    service.process(&first);
    let report = service.process(&second);
    let posted: u64 = report.ledger.iter().map(|a| a.runs).sum();
    assert_eq!(posted, 20, "ledger must accumulate across batches");
}

#[test]
fn fleet_report_serializes() {
    let jobs = batch(4);
    let mut service = FleetService::new(FleetConfig::new(2, 19));
    let report = service.process(&jobs);
    let json = serde_json::to_string(&report).expect("serialize report");
    assert!(json.contains("verdicts"));
    assert!(json.contains("billed_charge"));
}
