//! Exporting experiment results to CSV and Markdown.
//!
//! The JSON written by the `repro` binary is the machine-readable record;
//! the CSV export feeds plotting scripts, and the Markdown export is what
//! EXPERIMENTS.md embeds.

use crate::report::{ComparisonTable, FigureData};
use std::fmt::Write as _;

/// Renders a figure's series as CSV: one row per x-label, one column per
/// series.
///
/// # Example
///
/// ```
/// use trustmeter_experiments::{export, FigureData};
/// use trustmeter_sim::Series;
///
/// let mut fig = FigureData::new("fig4", "Shell attack", "utime grows");
/// let mut s = Series::new("user time (normal)");
/// s.push("O", 1.25);
/// fig.push_series(s);
/// let csv = export::figure_to_csv(&fig);
/// assert!(csv.starts_with("label,"));
/// assert!(csv.contains("O,1.25"));
/// ```
pub fn figure_to_csv(fig: &FigureData) -> String {
    let mut out = String::new();
    out.push_str("label");
    for s in &fig.series {
        out.push(',');
        out.push_str(&escape_csv(&s.name));
    }
    out.push('\n');
    let labels: Vec<&str> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|(l, _)| l.as_str()).collect())
        .unwrap_or_default();
    for label in labels {
        out.push_str(&escape_csv(label));
        for s in &fig.series {
            out.push(',');
            match s.value_for(label) {
                Some(v) => {
                    let _ = write!(out, "{v}");
                }
                None => out.push_str(""),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a figure as a Markdown table preceded by its title and the
/// paper's expectation.
pub fn figure_to_markdown(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {} — {}\n", fig.id, fig.title);
    let _ = writeln!(out, "*Paper expectation:* {}\n", fig.paper_expectation);
    let labels: Vec<&str> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|(l, _)| l.as_str()).collect())
        .unwrap_or_default();
    if labels.is_empty() {
        let _ = writeln!(out, "(no data)");
        return out;
    }
    // Header.
    out.push('|');
    out.push_str(" series |");
    for l in &labels {
        let _ = write!(out, " {l} |");
    }
    out.push('\n');
    out.push('|');
    out.push_str("---|");
    for _ in &labels {
        out.push_str("---|");
    }
    out.push('\n');
    for s in &fig.series {
        let _ = write!(out, "| {} |", s.name);
        for l in &labels {
            match s.value_for(l) {
                Some(v) => {
                    let _ = write!(out, " {v:.2} |");
                }
                None => {
                    let _ = write!(out, " – |");
                }
            }
        }
        out.push('\n');
    }
    if !fig.notes.is_empty() {
        out.push('\n');
        for n in &fig.notes {
            let _ = writeln!(out, "*{n}*");
        }
    }
    out
}

/// Renders the §V-C comparison table as Markdown.
pub fn comparison_to_markdown(table: &ComparisonTable) -> String {
    let mut out = String::new();
    out.push_str(
        "| attack | component | privilege | inflation | stime share of extra | extra (s) |\n",
    );
    out.push_str("|---|---|---|---|---|---|\n");
    for r in &table.rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.2}x | {:.0}% | {:.2} |",
            r.attack,
            r.component,
            r.privilege,
            r.inflation_factor,
            r.stime_share_of_extra * 100.0,
            r.extra_secs
        );
    }
    out
}

fn escape_csv(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ComparisonRow;
    use trustmeter_sim::Series;

    fn sample_figure() -> FigureData {
        let mut fig = FigureData::new("figX", "Sample", "expectation text");
        let mut a = Series::new("user time (normal)");
        a.push("O", 1.0);
        a.push("P", 2.5);
        let mut b = Series::new("user time (attack)");
        b.push("O", 1.4);
        b.push("P", 2.9);
        fig.push_series(a);
        fig.push_series(b);
        fig.note("scale = 0.01");
        fig
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = figure_to_csv(&sample_figure());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "label,user time (normal),user time (attack)");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("O,1"));
        assert!(lines[2].starts_with("P,2.5"));
    }

    #[test]
    fn csv_escapes_commas() {
        assert_eq!(escape_csv("a,b"), "\"a,b\"");
        assert_eq!(escape_csv("plain"), "plain");
        assert_eq!(escape_csv("qu\"ote"), "\"qu\"\"ote\"");
    }

    #[test]
    fn markdown_contains_title_expectation_and_values() {
        let md = figure_to_markdown(&sample_figure());
        assert!(md.contains("### figX — Sample"));
        assert!(md.contains("*Paper expectation:* expectation text"));
        assert!(md.contains("| user time (normal) | 1.00 | 2.50 |"));
        assert!(md.contains("*scale = 0.01*"));
    }

    #[test]
    fn markdown_of_empty_figure_is_graceful() {
        let fig = FigureData::new("e", "Empty", "nothing");
        assert!(figure_to_markdown(&fig).contains("(no data)"));
        assert_eq!(figure_to_csv(&fig), "label\n");
    }

    #[test]
    fn comparison_markdown_lists_rows() {
        let table = ComparisonTable {
            rows: vec![ComparisonRow {
                attack: "thrashing".into(),
                component: "system-time inflation".into(),
                privilege: "ptrace permission".into(),
                inflation_factor: 1.4,
                stime_share_of_extra: 0.7,
                extra_secs: 12.0,
            }],
        };
        let md = comparison_to_markdown(&table);
        assert!(md.contains("| thrashing |"));
        assert!(md.contains("1.40x"));
        assert!(md.contains("70%"));
    }

    #[test]
    fn real_experiment_exports_round_trip() {
        let cfg = crate::figures::ExperimentConfig {
            scale: 0.001,
            seed: 5,
        };
        let fig = crate::figures::fig4_shell(&cfg);
        let csv = figure_to_csv(&fig);
        // Header + one row per workload label.
        assert_eq!(csv.lines().count(), 1 + 4);
        let md = figure_to_markdown(&fig);
        assert!(md.contains("fig4"));
    }
}
