//! Kernel configuration: timer frequency, scheduler choice, and the cost
//! model for kernel paths.
//!
//! The defaults are calibrated for the paper's evaluation machine (a single
//! core of an Intel Core 2 Duo E7200 at 2.53 GHz running Linux 2.6.29 at
//! HZ=250). Kernel-path costs are order-of-magnitude figures for that class
//! of hardware; absolute values only shift the figures' scale, not their
//! shape.

use serde::{Deserialize, Serialize};
use trustmeter_sim::{CpuFrequency, Cycles, Nanos};

/// Which scheduler the kernel uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulerKind {
    /// Per-jiffy proportional-share scheduler with tick-quantised
    /// preemption (the default; models the tick-driven scheduling decisions
    /// that make the scheduling attack effective).
    #[default]
    FairShare,
    /// vruntime-based scheduler with immediate wakeup preemption (CFS-like,
    /// used for the scheduler ablation).
    Cfs,
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerKind::FairShare => f.write_str("fair-share"),
            SchedulerKind::Cfs => f.write_str("cfs"),
        }
    }
}

/// Cycle costs of the kernel paths exercised by the simulation.
///
/// All costs are expressed in wall-clock microseconds and converted to
/// cycles through the configured CPU frequency; this keeps the numbers
/// recognisable (a context switch is "a few microseconds") and independent
/// of the simulated clock rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Direct cost of a context switch (register/address-space switch).
    pub context_switch_us: f64,
    /// Fixed syscall entry/exit overhead.
    pub syscall_entry_us: f64,
    /// `fork()` service time (copying descriptors, COW setup).
    pub fork_us: f64,
    /// `execve()` service time (image setup, before dynamic linking).
    pub execve_us: f64,
    /// Dynamic-linker work per loaded shared library.
    pub dynlink_per_library_us: f64,
    /// `exit()` / task teardown service time.
    pub exit_us: f64,
    /// `wait()` bookkeeping when a child is reaped.
    pub wait_us: f64,
    /// Device-interrupt handler service time (NIC receive path for a junk
    /// packet).
    pub nic_irq_us: f64,
    /// Disk-interrupt handler service time.
    pub disk_irq_us: f64,
    /// Minor page-fault service time (page already in page cache / COW).
    pub minor_fault_us: f64,
    /// Major page-fault service time excluding device wait (swap-in setup).
    pub major_fault_us: f64,
    /// Synchronous swap-in device time charged while the kernel services a
    /// major fault.
    pub swap_in_us: f64,
    /// Debug-exception service + SIGTRAP delivery (one thrashing round,
    /// kernel side on the tracee).
    pub debug_trap_us: f64,
    /// Signal delivery bookkeeping.
    pub signal_delivery_us: f64,
    /// `ptrace()` request service time (attach, cont, poke).
    pub ptrace_request_us: f64,
    /// Timer-interrupt handler (accounting + scheduler tick).
    pub timer_irq_us: f64,
    /// Disk read/write latency per request (device time, the requester is
    /// blocked for this long).
    pub disk_latency_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            context_switch_us: 3.0,
            syscall_entry_us: 0.5,
            fork_us: 60.0,
            execve_us: 120.0,
            dynlink_per_library_us: 40.0,
            exit_us: 40.0,
            wait_us: 5.0,
            nic_irq_us: 6.0,
            disk_irq_us: 8.0,
            minor_fault_us: 2.0,
            major_fault_us: 12.0,
            swap_in_us: 250.0,
            debug_trap_us: 25.0,
            signal_delivery_us: 5.0,
            ptrace_request_us: 6.0,
            timer_irq_us: 2.0,
            disk_latency_us: 4_000.0,
        }
    }
}

impl CostModel {
    /// Converts a microsecond cost into cycles at the given frequency.
    pub fn cycles(freq: CpuFrequency, us: f64) -> Cycles {
        freq.cycles_for(Nanos::from_secs_f64(us / 1e6))
    }
}

/// Full configuration of a simulated kernel instance.
///
/// # Example
///
/// ```
/// use trustmeter_kernel::KernelConfig;
///
/// let cfg = KernelConfig::paper_machine().with_hz(1000);
/// assert_eq!(cfg.hz, 1000);
/// assert!(cfg.jiffy().as_u64() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// CPU clock frequency.
    pub frequency: CpuFrequency,
    /// Timer interrupt frequency (ticks per second).
    pub hz: u32,
    /// Scheduler implementation.
    pub scheduler: SchedulerKind,
    /// Kernel path costs.
    pub costs: CostModel,
    /// Physical memory available to user tasks, in pages.
    pub physical_pages: u64,
    /// RNG seed for the whole simulation.
    pub seed: u64,
    /// Safety horizon: the simulation aborts after this much virtual time
    /// even if tasks are still alive (guards against runaway programs).
    pub horizon_secs: f64,
}

impl KernelConfig {
    /// Configuration matching the paper's evaluation platform: one core of
    /// an E7200 at 2.53 GHz, HZ=250, 2 GiB of RAM (at 4 KiB pages).
    pub fn paper_machine() -> KernelConfig {
        KernelConfig {
            frequency: CpuFrequency::E7200,
            hz: 250,
            scheduler: SchedulerKind::FairShare,
            costs: CostModel::default(),
            physical_pages: 512 * 1024,
            seed: 0x5eed_cafe,
            horizon_secs: 100_000.0,
        }
    }

    /// Sets the timer frequency.
    ///
    /// # Panics
    /// Panics if `hz` is zero.
    pub fn with_hz(mut self, hz: u32) -> KernelConfig {
        assert!(hz > 0, "HZ must be positive");
        self.hz = hz;
        self
    }

    /// Sets the scheduler implementation.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> KernelConfig {
        self.scheduler = scheduler;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> KernelConfig {
        self.seed = seed;
        self
    }

    /// Sets the amount of physical memory, in pages.
    ///
    /// # Panics
    /// Panics if `pages` is zero.
    pub fn with_physical_pages(mut self, pages: u64) -> KernelConfig {
        assert!(pages > 0, "physical memory must be non-empty");
        self.physical_pages = pages;
        self
    }

    /// Sets the simulation horizon in virtual seconds.
    pub fn with_horizon_secs(mut self, secs: f64) -> KernelConfig {
        self.horizon_secs = secs;
        self
    }

    /// The jiffy (timer period) in cycles.
    pub fn jiffy(&self) -> Cycles {
        Cycles(self.frequency.hz() / self.hz as u64)
    }

    /// The jiffy in wall-clock time.
    pub fn jiffy_nanos(&self) -> Nanos {
        Nanos(1_000_000_000 / self.hz as u64)
    }

    /// Converts a microsecond figure from the cost model into cycles.
    pub fn cost(&self, us: f64) -> Cycles {
        CostModel::cycles(self.frequency, us)
    }

    /// The simulation horizon in cycles.
    pub fn horizon(&self) -> Cycles {
        self.frequency
            .cycles_for(Nanos::from_secs_f64(self.horizon_secs))
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig::paper_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_matches_paper_specs() {
        let cfg = KernelConfig::paper_machine();
        assert_eq!(cfg.frequency, CpuFrequency::E7200);
        assert_eq!(cfg.hz, 250);
        // 2.533 GHz / 250 Hz = 10.132 M cycles per jiffy.
        assert_eq!(cfg.jiffy(), Cycles(10_132_000));
        assert_eq!(cfg.jiffy_nanos(), Nanos::from_millis(4));
        assert_eq!(cfg.scheduler, SchedulerKind::FairShare);
    }

    #[test]
    fn builder_methods() {
        let cfg = KernelConfig::paper_machine()
            .with_hz(1000)
            .with_scheduler(SchedulerKind::Cfs)
            .with_seed(42)
            .with_physical_pages(1024)
            .with_horizon_secs(10.0);
        assert_eq!(cfg.hz, 1000);
        assert_eq!(cfg.scheduler, SchedulerKind::Cfs);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.physical_pages, 1024);
        assert!(cfg.horizon() < KernelConfig::paper_machine().horizon());
    }

    #[test]
    #[should_panic(expected = "HZ must be positive")]
    fn zero_hz_rejected() {
        let _ = KernelConfig::paper_machine().with_hz(0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_memory_rejected() {
        let _ = KernelConfig::paper_machine().with_physical_pages(0);
    }

    #[test]
    fn cost_conversion_is_linear() {
        let cfg = KernelConfig::paper_machine();
        let one = cfg.cost(1.0);
        let ten = cfg.cost(10.0);
        assert!(ten.as_u64() >= one.as_u64() * 9 && ten.as_u64() <= one.as_u64() * 11);
        // 1 µs at 2.533 GHz is 2533 cycles.
        assert_eq!(one, Cycles(2_533));
    }

    #[test]
    fn default_cost_model_is_sane() {
        let c = CostModel::default();
        assert!(c.context_switch_us > 0.0);
        assert!(c.swap_in_us > c.major_fault_us);
        assert!(c.fork_us > c.syscall_entry_us);
        assert!(c.disk_latency_us > c.disk_irq_us);
    }

    #[test]
    fn scheduler_kind_display() {
        assert_eq!(format!("{}", SchedulerKind::FairShare), "fair-share");
        assert_eq!(format!("{}", SchedulerKind::Cfs), "cfs");
    }
}
