//! Native reference implementations of the victim programs' computational
//! kernels (MD5, π, Whetstone).
//!
//! These run for real (and are tested against known vectors); the simulated
//! [`crate::programs`] derive their operation mixes and per-iteration costs
//! from them, so the simulated workloads are grounded in actual code rather
//! than arbitrary constants.

pub mod md5;
pub mod pi;
pub mod whetstone;
