//! Reproduction of every figure in the paper's evaluation (§V-B).
//!
//! Each `figN_*` function runs the corresponding experiment on the simulated
//! platform and returns a [`FigureData`] whose series mirror the bars/lines
//! of the paper's figure. Absolute seconds depend on the `scale` factor (and
//! on the simulator's calibration); the *shape* — which component grows, by
//! roughly what factor, and how it depends on the attacker's priority — is
//! what EXPERIMENTS.md compares against the paper.

use crate::report::FigureData;
use crate::scenario::{Scenario, ScenarioOutcome};
use serde::{Deserialize, Serialize};
use trustmeter_attacks::{
    Attack, ExceptionFloodAttack, ForkAttacker, InterpositionAttack, InterruptFloodAttack,
    PreloadConstructorAttack, SchedulingAttack, ShellAttack, ThrashingAttack,
};
use trustmeter_kernel::{Kernel, KernelConfig};
use trustmeter_sim::Series;
use trustmeter_workloads::Workload;

/// Parameters shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Workload scale (1.0 = the paper's full-size runs; the default 0.01
    /// keeps the whole suite to a few minutes of host time).
    pub scale: f64,
    /// RNG seed for the simulated platform.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 0.01,
            seed: 0x7123_4567,
        }
    }
}

impl ExperimentConfig {
    /// A configuration with the given scale.
    pub fn with_scale(scale: f64) -> ExperimentConfig {
        ExperimentConfig {
            scale,
            ..Default::default()
        }
    }

    fn kernel_config(&self) -> KernelConfig {
        KernelConfig::paper_machine().with_seed(self.seed)
    }

    fn scenario(&self, workload: Workload) -> Scenario {
        Scenario::new(workload, self.scale).with_config(self.kernel_config())
    }
}

/// The nice values swept in Figs. 7 and 8 (labelled as in the paper).
pub const NICE_SWEEP: [(&str, i8); 5] = [
    ("nice", 0),
    ("nice-5", -5),
    ("nice-10", -10),
    ("nice-15", -15),
    ("nice-20", -20),
];

fn four_program_attack_figure(
    id: &str,
    title: &str,
    expectation: &str,
    cfg: &ExperimentConfig,
    make_attack: impl Fn(Workload, &ScenarioOutcome) -> Box<dyn Attack>,
) -> FigureData {
    let mut fig = FigureData::new(id, title, expectation);
    let mut normal_u = Series::new("user time (normal)");
    let mut normal_s = Series::new("system time (normal)");
    let mut attack_u = Series::new("user time (attack)");
    let mut attack_s = Series::new("system time (attack)");
    for w in Workload::ALL {
        let scenario = cfg.scenario(w);
        let clean = scenario.run_clean();
        let attack = make_attack(w, &clean);
        let attacked = scenario.run_attacked(attack.as_ref());
        normal_u.push(w.label(), clean.billed_utime_secs());
        normal_s.push(w.label(), clean.billed_stime_secs());
        attack_u.push(w.label(), attacked.billed_utime_secs());
        attack_s.push(w.label(), attacked.billed_stime_secs());
    }
    fig.push_series(normal_u);
    fig.push_series(normal_s);
    fig.push_series(attack_u);
    fig.push_series(attack_s);
    fig.note(format!("workload scale = {}", cfg.scale));
    fig
}

/// Fig. 4 — the shell attack: code injected between `fork()` and `execve()`
/// adds the same constant amount of user time to every program.
pub fn fig4_shell(cfg: &ExperimentConfig) -> FigureData {
    four_program_attack_figure(
        "fig4",
        "Shell attack",
        "user time of O, P, W, B grows by the same ~34 s constant; system time unchanged",
        cfg,
        |_, _| Box::new(ShellAttack::paper_default(cfg.scale)),
    )
}

/// Fig. 5 — the shared-library constructor attack via `LD_PRELOAD`.
pub fn fig5_ctor(cfg: &ExperimentConfig) -> FigureData {
    four_program_attack_figure(
        "fig5",
        "Shared library constructor attack",
        "almost identical to Fig. 4: the same attack code runs at a different launch point",
        cfg,
        |_, _| Box::new(PreloadConstructorAttack::paper_default(cfg.scale)),
    )
}

/// Fig. 6 — the function-substitution attack (interposed `malloc`/`sqrt`).
pub fn fig6_interpose(cfg: &ExperimentConfig) -> FigureData {
    four_program_attack_figure(
        "fig6",
        "Shared library function substitution attack",
        "like Figs. 4–5 but amplified: the attack code runs on every interposed call",
        cfg,
        |_, _| Box::new(InterpositionAttack::paper_default(cfg.scale)),
    )
}

/// Billed CPU seconds of the fork attacker running alone (the leftmost bar
/// pair of Figs. 7 and 8).
fn fork_attacker_standalone_secs(cfg: &ExperimentConfig, nice: i8) -> f64 {
    let mut kernel = Kernel::new(cfg.kernel_config());
    let attacker = ForkAttacker::paper_default(cfg.scale, nice);
    kernel.spawn_raw(Box::new(attacker), nice);
    let result = kernel.run();
    result
        .processes
        .iter()
        .filter(|p| p.name.starts_with("Fork"))
        .map(|p| p.billed().total_secs(result.frequency))
        .sum()
}

fn scheduling_figure(
    id: &str,
    title: &str,
    workload: Workload,
    cfg: &ExperimentConfig,
) -> FigureData {
    let mut fig = FigureData::new(
        id,
        title,
        "as the attacker's priority rises, the victim's measured CPU time rises and the \
         attacker's falls while their sum stays roughly constant (little effect on the \
         multi-threaded Brute)",
    );
    let mut victim_series = Series::new(format!("CPU time of {}", workload.label()));
    let mut fork_series = Series::new("CPU time of Fork");

    // Leftmost pair: both programs run independently.
    let clean = cfg.scenario(workload).run_clean();
    victim_series.push("no attack", clean.billed_total_secs());
    fork_series.push("no attack", fork_attacker_standalone_secs(cfg, 0));

    for (label, nice) in NICE_SWEEP {
        let attack = SchedulingAttack::paper_default(cfg.scale, nice);
        let outcome = cfg.scenario(workload).run_attacked(&attack);
        let fork_total =
            outcome.other_billed_total_secs("Fork") + outcome.other_billed_total_secs("Fork-child");
        victim_series.push(label, outcome.billed_total_secs());
        fork_series.push(label, fork_total);
    }
    fig.push_series(victim_series);
    fig.push_series(fork_series);
    fig.note(format!("fork/wait cycles = 2^21 x scale ({})", cfg.scale));
    fig
}

/// Fig. 7 — the process-scheduling attack against Whetstone across the nice
/// sweep.
pub fn fig7_sched_whetstone(cfg: &ExperimentConfig) -> FigureData {
    scheduling_figure(
        "fig7",
        "Process scheduling attack on Whetstone",
        Workload::Whetstone,
        cfg,
    )
}

/// Fig. 8 — the process-scheduling attack against the multi-threaded Brute.
pub fn fig8_sched_brute(cfg: &ExperimentConfig) -> FigureData {
    scheduling_figure(
        "fig8",
        "Process scheduling attack on Brute",
        Workload::Brute,
        cfg,
    )
}

/// Fig. 9 — the execution-thrashing attack (ptrace + hardware breakpoints).
pub fn fig9_thrash(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = four_program_attack_figure(
        "fig9",
        "Execution thrashing attack",
        "mostly the system time of the victims grows, in proportion to how often the \
         breakpointed variable is accessed",
        cfg,
        |_, _| Box::new(ThrashingAttack::paper_default()),
    );
    fig.note("breakpoint hit counts follow the paper: ~10^6 (O), 10^7 (P), 2x10^5 (W), 8.95x10^5 (B), scaled");
    fig
}

/// Fig. 10 — the interrupt-flooding attack (junk packets at the NIC).
pub fn fig10_irqflood(cfg: &ExperimentConfig) -> FigureData {
    four_program_attack_figure(
        "fig10",
        "Interrupt flooding attack",
        "system time of every program increases slightly (the junk-packet handlers)",
        cfg,
        |_, _| Box::new(InterruptFloodAttack::paper_default()),
    )
}

/// Fig. 11 — the exception-flooding attack (memory hog forcing page faults).
pub fn fig11_pfflood(cfg: &ExperimentConfig) -> FigureData {
    four_program_attack_figure(
        "fig11",
        "Exception flooding attack",
        "system time grows due to page-fault service and swap-in while memory is exhausted",
        cfg,
        |w, clean| {
            let victim_secs = clean.elapsed_secs.max(0.1);
            let _ = w;
            Box::new(ExceptionFloodAttack::paper_default(victim_secs * 2.0))
        },
    )
}

/// Runs every figure of the paper in order.
pub fn all_figures(cfg: &ExperimentConfig) -> Vec<FigureData> {
    vec![
        fig4_shell(cfg),
        fig5_ctor(cfg),
        fig6_interpose(cfg),
        fig7_sched_whetstone(cfg),
        fig8_sched_brute(cfg),
        fig9_thrash(cfg),
        fig10_irqflood(cfg),
        fig11_pfflood(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.002,
            seed: 42,
        }
    }

    #[test]
    fn fig4_constant_user_time_inflation() {
        let cfg = tiny();
        let fig = fig4_shell(&cfg);
        let normal = fig.series_named("user time (normal)").unwrap();
        let attacked = fig.series_named("user time (attack)").unwrap();
        let injected = 34.0 * cfg.scale;
        let mut growths = Vec::new();
        for w in Workload::ALL {
            let g = attacked.value_for(w.label()).unwrap() - normal.value_for(w.label()).unwrap();
            growths.push(g);
            assert!(
                g > injected * 0.8,
                "{}: growth {g} should be ≈ {injected}",
                w.label()
            );
        }
        // All four programs grow by (almost) the same amount.
        let min = growths.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = growths.iter().cloned().fold(0.0, f64::max);
        assert!(
            max - min < injected * 0.3,
            "growths should be uniform: {growths:?}"
        );
        // System time is essentially unaffected.
        let ns = fig.series_named("system time (normal)").unwrap();
        let as_ = fig.series_named("system time (attack)").unwrap();
        for w in Workload::ALL {
            let d = (as_.value_for(w.label()).unwrap() - ns.value_for(w.label()).unwrap()).abs();
            assert!(d < injected * 0.2, "{}: stime moved by {d}", w.label());
        }
    }

    #[test]
    fn fig5_matches_fig4_shape() {
        let cfg = tiny();
        let f4 = fig4_shell(&cfg);
        let f5 = fig5_ctor(&cfg);
        for w in Workload::ALL {
            let a4 = f4
                .series_named("user time (attack)")
                .unwrap()
                .value_for(w.label())
                .unwrap();
            let a5 = f5
                .series_named("user time (attack)")
                .unwrap()
                .value_for(w.label())
                .unwrap();
            assert!(
                (a4 - a5).abs() / a4 < 0.1,
                "{}: fig4 {a4} vs fig5 {a5}",
                w.label()
            );
        }
    }

    #[test]
    fn fig7_sum_conserved_and_monotone() {
        let cfg = tiny();
        let fig = fig7_sched_whetstone(&cfg);
        let victim = fig.series_named("CPU time of W").unwrap();
        let fork = fig.series_named("CPU time of Fork").unwrap();
        let baseline_sum =
            victim.value_for("no attack").unwrap() + fork.value_for("no attack").unwrap();
        let mut prev_victim = victim.value_for("no attack").unwrap();
        for (label, _) in NICE_SWEEP {
            let v = victim.value_for(label).unwrap();
            let f = fork.value_for(label).unwrap();
            // The victim is overcharged relative to running alone.
            assert!(
                v > prev_victim * 0.99,
                "victim time should not shrink at {label}"
            );
            // Conservation: the two bars together stay near the standalone sum.
            let sum = v + f;
            assert!(
                (sum - baseline_sum).abs() / baseline_sum < 0.25,
                "sum at {label} = {sum}, baseline {baseline_sum}"
            );
            prev_victim = v;
        }
        // The strongest attacker produces a clearly larger victim reading
        // than no attack at all.
        let strongest = victim.value_for("nice-20").unwrap();
        let none = victim.value_for("no attack").unwrap();
        assert!(
            strongest > none * 1.2,
            "nice-20 {strongest} vs no-attack {none}"
        );
    }

    #[test]
    fn fig8_brute_is_less_affected_than_whetstone() {
        let cfg = tiny();
        let f7 = fig7_sched_whetstone(&cfg);
        let f8 = fig8_sched_brute(&cfg);
        let rel_increase = |fig: &FigureData, label: &str| {
            let s = fig.series.first().unwrap();
            s.value_for("nice-20").unwrap() / s.value_for(label).unwrap()
        };
        let w_inflation = rel_increase(&f7, "no attack");
        let b_inflation = rel_increase(&f8, "no attack");
        assert!(
            b_inflation < w_inflation,
            "Brute ({b_inflation}) should be hit less than Whetstone ({w_inflation})"
        );
    }

    #[test]
    fn fig9_increases_system_time() {
        let cfg = tiny();
        let fig = fig9_thrash(&cfg);
        let ns = fig.series_named("system time (normal)").unwrap();
        let as_ = fig.series_named("system time (attack)").unwrap();
        for w in Workload::ALL {
            assert!(
                as_.value_for(w.label()).unwrap() >= ns.value_for(w.label()).unwrap(),
                "{} stime should not shrink under thrashing",
                w.label()
            );
        }
        // P has by far the most breakpoint hits and therefore the largest
        // system-time growth.
        let growth = |l: &str| as_.value_for(l).unwrap() - ns.value_for(l).unwrap();
        assert!(
            growth("P") > growth("W"),
            "P {} vs W {}",
            growth("P"),
            growth("W")
        );
    }

    #[test]
    fn fig10_slight_stime_increase() {
        let cfg = tiny();
        let fig = fig10_irqflood(&cfg);
        let ns = fig.series_named("system time (normal)").unwrap();
        let as_ = fig.series_named("system time (attack)").unwrap();
        let nu = fig.series_named("user time (normal)").unwrap();
        for w in Workload::ALL {
            let delta = as_.value_for(w.label()).unwrap() - ns.value_for(w.label()).unwrap();
            assert!(delta >= 0.0, "{}: stime should not shrink", w.label());
            // "Slight": far smaller than the program's own user time.
            assert!(
                delta < nu.value_for(w.label()).unwrap() * 0.5,
                "{}: delta {delta}",
                w.label()
            );
        }
        // At least one workload shows a visible increase.
        let any_growth = Workload::ALL
            .iter()
            .any(|w| as_.value_for(w.label()).unwrap() > ns.value_for(w.label()).unwrap() + 1e-6);
        assert!(any_growth);
    }
}
