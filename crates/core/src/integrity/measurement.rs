//! Measured launch: source integrity for a process's code closure.
//!
//! Every image that executes inside a user process's context — the user's
//! own executable, each shared library, each constructor/destructor, every
//! interposed symbol, and any code the shell injects before `execve()` — is
//! measured (hashed) into an append-only [`MeasurementLog`] and folded into
//! a [`PcrBank`], mimicking the TCG integrity-measurement architecture the
//! paper cites (Sailer et al., USENIX Security 2004).
//!
//! A customer who knows the expected closure of her program (a *whitelist*)
//! can check the log and detect the launch-time attacks of §IV-A: the shell
//! attack shows up as an unexpected [`ImageKind::ShellInjected`] entry, the
//! `LD_PRELOAD` attacks as unexpected [`ImageKind::SharedLibrary`] /
//! [`ImageKind::Constructor`] entries.

use super::sha256::Sha256;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A 256-bit measurement digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest (initial PCR value).
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Hashes arbitrary bytes into a digest.
    pub fn of(data: &[u8]) -> Digest {
        Digest(Sha256::digest(data))
    }

    /// Hashes a string label (convenience for naming code objects in the
    /// simulator, where there are no real bytes to hash).
    pub fn of_label(label: &str) -> Digest {
        Digest::of(label.as_bytes())
    }

    /// Lowercase hex rendering.
    pub fn to_hex(&self) -> String {
        Sha256::to_hex(&self.0)
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::ZERO
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", &self.to_hex()[..16])
    }
}

/// The kind of code object being measured into a process's context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ImageKind {
    /// The user-submitted program binary.
    Executable,
    /// A shared library mapped at startup or via `dlopen`.
    SharedLibrary,
    /// A library constructor or destructor routine.
    Constructor,
    /// An interposed (substituted) library symbol.
    InterposedSymbol,
    /// Code the shell executes in the child between `fork()` and `execve()`.
    ShellInjected,
    /// The dynamic linker itself.
    Linker,
}

impl fmt::Display for ImageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ImageKind::Executable => "executable",
            ImageKind::SharedLibrary => "shared-library",
            ImageKind::Constructor => "constructor",
            ImageKind::InterposedSymbol => "interposed-symbol",
            ImageKind::ShellInjected => "shell-injected",
            ImageKind::Linker => "linker",
        };
        f.write_str(s)
    }
}

/// One measured image: a named code object plus its digest.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MeasuredImage {
    /// Human-readable name (e.g. `"libc.so.6"`, `"attack_preload.so"`).
    pub name: String,
    /// What kind of object this is.
    pub kind: ImageKind,
    /// Measurement digest of the object's contents.
    pub digest: Digest,
}

impl MeasuredImage {
    /// Creates a measured image, deriving the digest from the name and kind
    /// (the simulator has no real bytes; a real implementation hashes the
    /// mapped file).
    pub fn new(name: impl Into<String>, kind: ImageKind) -> MeasuredImage {
        let name = name.into();
        let digest = Digest::of(format!("{kind}:{name}").as_bytes());
        MeasuredImage { name, kind, digest }
    }

    /// Creates a measured image with an explicit digest.
    pub fn with_digest(name: impl Into<String>, kind: ImageKind, digest: Digest) -> MeasuredImage {
        MeasuredImage {
            name: name.into(),
            kind,
            digest,
        }
    }
}

impl fmt::Display for MeasuredImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.name, self.kind, self.digest)
    }
}

/// A simulated TPM platform-configuration-register bank.
///
/// `extend` folds a new measurement into a register exactly like a TPM:
/// `PCR ← SHA-256(PCR ‖ measurement)`. The final PCR value therefore commits
/// to the whole ordered measurement sequence.
///
/// # Example
///
/// ```
/// use trustmeter_core::{Digest, PcrBank};
/// let mut bank = PcrBank::new(4);
/// let before = bank.read(0);
/// bank.extend(0, Digest::of(b"image"));
/// assert_ne!(bank.read(0), before);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcrBank {
    pcrs: Vec<Digest>,
}

impl PcrBank {
    /// Creates a bank with `n` registers initialised to zero.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> PcrBank {
        assert!(n > 0, "a PCR bank needs at least one register");
        PcrBank {
            pcrs: vec![Digest::ZERO; n],
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.pcrs.len()
    }

    /// Whether the bank has no registers (never true for a constructed bank).
    pub fn is_empty(&self) -> bool {
        self.pcrs.is_empty()
    }

    /// Reads register `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn read(&self, index: usize) -> Digest {
        self.pcrs[index]
    }

    /// Extends register `index` with `measurement`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn extend(&mut self, index: usize, measurement: Digest) -> Digest {
        let mut h = Sha256::new();
        h.update(&self.pcrs[index].0);
        h.update(&measurement.0);
        self.pcrs[index] = Digest(h.finalize());
        self.pcrs[index]
    }

    /// Recomputes the expected PCR value for an ordered measurement list,
    /// starting from zero. Verifiers use this to check a measurement log
    /// against a quoted PCR.
    pub fn replay(measurements: impl IntoIterator<Item = Digest>) -> Digest {
        let mut bank = PcrBank::new(1);
        for m in measurements {
            bank.extend(0, m);
        }
        bank.read(0)
    }
}

/// The verifier's verdict on a process's measured code closure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceIntegrityReport {
    /// Images present in the log but absent from the whitelist — evidence of
    /// injected code (shell attack, preload attack, interposition attack).
    pub unexpected: Vec<MeasuredImage>,
    /// Whitelisted images that never appeared (e.g. a library silently
    /// replaced rather than added).
    pub missing: Vec<String>,
    /// Whether the replayed PCR matched the quoted PCR.
    pub pcr_consistent: bool,
}

impl SourceIntegrityReport {
    /// `true` when the closure is exactly the expected one and the PCR
    /// replay matched.
    pub fn is_trustworthy(&self) -> bool {
        self.unexpected.is_empty() && self.missing.is_empty() && self.pcr_consistent
    }
}

impl fmt::Display for SourceIntegrityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "source-integrity: {} ({} unexpected, {} missing, pcr {})",
            if self.is_trustworthy() {
                "OK"
            } else {
                "VIOLATED"
            },
            self.unexpected.len(),
            self.missing.len(),
            if self.pcr_consistent {
                "consistent"
            } else {
                "MISMATCH"
            }
        )
    }
}

/// Append-only measurement log for one process (one per `execve`).
///
/// # Example
///
/// ```
/// use trustmeter_core::{ImageKind, MeasuredImage, MeasurementLog};
///
/// let mut log = MeasurementLog::new();
/// log.measure(MeasuredImage::new("victim", ImageKind::Executable));
/// log.measure(MeasuredImage::new("libc.so.6", ImageKind::SharedLibrary));
/// log.measure(MeasuredImage::new("attack_preload.so", ImageKind::SharedLibrary));
///
/// let whitelist = ["victim", "libc.so.6"];
/// let report = log.verify(whitelist.iter().copied(), log.pcr());
/// assert!(!report.is_trustworthy());
/// assert_eq!(report.unexpected.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasurementLog {
    entries: Vec<MeasuredImage>,
    pcr: Digest,
}

impl MeasurementLog {
    /// Creates an empty log.
    pub fn new() -> MeasurementLog {
        MeasurementLog {
            entries: Vec::new(),
            pcr: Digest::ZERO,
        }
    }

    /// Appends a measurement and extends the log's PCR.
    pub fn measure(&mut self, image: MeasuredImage) {
        let mut h = Sha256::new();
        h.update(&self.pcr.0);
        h.update(&image.digest.0);
        self.pcr = Digest(h.finalize());
        self.entries.push(image);
    }

    /// The measured entries, in measurement order.
    pub fn entries(&self) -> &[MeasuredImage] {
        &self.entries
    }

    /// Number of measured entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The current PCR value committing to the whole log.
    pub fn pcr(&self) -> Digest {
        self.pcr
    }

    /// Verifies the log against a whitelist of expected image names and a
    /// quoted PCR value (normally obtained from an attestation
    /// [`crate::Quote`]).
    pub fn verify<'a>(
        &self,
        whitelist: impl IntoIterator<Item = &'a str>,
        quoted_pcr: Digest,
    ) -> SourceIntegrityReport {
        let allowed: BTreeSet<&str> = whitelist.into_iter().collect();
        let unexpected: Vec<MeasuredImage> = self
            .entries
            .iter()
            .filter(|e| !allowed.contains(e.name.as_str()))
            .cloned()
            .collect();
        let present: BTreeSet<&str> = self.entries.iter().map(|e| e.name.as_str()).collect();
        let missing: Vec<String> = allowed
            .iter()
            .filter(|n| !present.contains(**n))
            .map(|n| n.to_string())
            .collect();
        let replayed = PcrBank::replay(self.entries.iter().map(|e| e.digest));
        SourceIntegrityReport {
            unexpected,
            missing,
            pcr_consistent: replayed == quoted_pcr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_of_label_is_stable() {
        assert_eq!(Digest::of_label("x"), Digest::of_label("x"));
        assert_ne!(Digest::of_label("x"), Digest::of_label("y"));
        assert_eq!(Digest::ZERO.to_hex(), "0".repeat(64));
        assert_eq!(format!("{}", Digest::ZERO).len(), 16);
    }

    #[test]
    fn measured_image_digest_depends_on_kind() {
        let a = MeasuredImage::new("libm.so", ImageKind::SharedLibrary);
        let b = MeasuredImage::new("libm.so", ImageKind::Constructor);
        assert_ne!(a.digest, b.digest);
        assert!(format!("{a}").contains("libm.so"));
    }

    #[test]
    fn pcr_extend_changes_and_is_order_sensitive() {
        let m1 = Digest::of(b"one");
        let m2 = Digest::of(b"two");
        let mut bank_a = PcrBank::new(1);
        bank_a.extend(0, m1);
        bank_a.extend(0, m2);
        let mut bank_b = PcrBank::new(1);
        bank_b.extend(0, m2);
        bank_b.extend(0, m1);
        assert_ne!(bank_a.read(0), bank_b.read(0));
        assert_eq!(PcrBank::replay([m1, m2]), bank_a.read(0));
        assert_eq!(bank_a.len(), 1);
        assert!(!bank_a.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn empty_bank_rejected() {
        let _ = PcrBank::new(0);
    }

    #[test]
    fn clean_log_verifies() {
        let mut log = MeasurementLog::new();
        log.measure(MeasuredImage::new("prog", ImageKind::Executable));
        log.measure(MeasuredImage::new("ld-linux.so", ImageKind::Linker));
        log.measure(MeasuredImage::new("libc.so.6", ImageKind::SharedLibrary));
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        let report = log.verify(["prog", "ld-linux.so", "libc.so.6"], log.pcr());
        assert!(report.is_trustworthy());
        assert!(format!("{report}").contains("OK"));
    }

    #[test]
    fn injected_code_is_flagged() {
        let mut log = MeasurementLog::new();
        log.measure(MeasuredImage::new("prog", ImageKind::Executable));
        log.measure(MeasuredImage::new(
            "shell-injected-loop",
            ImageKind::ShellInjected,
        ));
        let report = log.verify(["prog"], log.pcr());
        assert!(!report.is_trustworthy());
        assert_eq!(report.unexpected.len(), 1);
        assert_eq!(report.unexpected[0].kind, ImageKind::ShellInjected);
        assert!(report.missing.is_empty());
        assert!(format!("{report}").contains("VIOLATED"));
    }

    #[test]
    fn missing_whitelisted_image_is_flagged() {
        let mut log = MeasurementLog::new();
        log.measure(MeasuredImage::new("prog", ImageKind::Executable));
        let report = log.verify(["prog", "libexpected.so"], log.pcr());
        assert!(!report.is_trustworthy());
        assert_eq!(report.missing, vec!["libexpected.so".to_string()]);
    }

    #[test]
    fn wrong_quoted_pcr_is_flagged() {
        let mut log = MeasurementLog::new();
        log.measure(MeasuredImage::new("prog", ImageKind::Executable));
        let report = log.verify(["prog"], Digest::of(b"forged"));
        assert!(!report.pcr_consistent);
        assert!(!report.is_trustworthy());
    }

    #[test]
    fn empty_log_with_empty_whitelist_is_trustworthy() {
        let log = MeasurementLog::new();
        let report = log.verify([], log.pcr());
        assert!(report.is_trustworthy());
    }
}
