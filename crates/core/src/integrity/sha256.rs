//! A from-scratch SHA-256 implementation (FIPS 180-4).
//!
//! Used for image measurement, PCR extension, execution witnesses and
//! attestation MACs. The implementation favours clarity over speed; it is
//! not intended to be constant-time and must not be used to protect real
//! secrets — inside the simulator that is irrelevant.

/// Streaming SHA-256 hasher.
///
/// # Example
///
/// ```
/// use trustmeter_core::Sha256;
/// let digest = Sha256::digest(b"abc");
/// assert_eq!(
///     Sha256::to_hex(&digest),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Convenience: hashes `data` in one call.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Hashes the concatenation of two 32-byte digests — the execution
    /// witness's chain-update shape, `H(chain || step)`. Bit-identical to
    /// `digest(&[a, b].concat())` but skips the streaming buffer: the
    /// message is exactly one data block, so the padding block is a
    /// compile-time constant (0x80 marker, 512-bit length).
    pub fn digest_pair(a: &[u8; 32], b: &[u8; 32]) -> [u8; 32] {
        const PAD: [u8; 64] = {
            let mut pad = [0u8; 64];
            pad[0] = 0x80;
            // 64 bytes = 512 bits, big-endian in the trailing length field.
            pad[62] = 0x02;
            pad
        };
        let mut state = H0;
        let mut block = [0u8; 64];
        block[..32].copy_from_slice(a);
        block[32..].copy_from_slice(b);
        Self::compress(&mut state, &block);
        Self::compress(&mut state, &PAD);
        let mut out = [0u8; 32];
        for (i, word) in state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Feeds more data into the hasher.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.process_block(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes the computation and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length — assembled as
        // whole blocks rather than byte-at-a-time.
        let mut block = [0u8; 64];
        block[..self.buffer_len].copy_from_slice(&self.buffer[..self.buffer_len]);
        block[self.buffer_len] = 0x80;
        if self.buffer_len < 56 {
            block[56..].copy_from_slice(&bit_len.to_be_bytes());
            self.process_block(&block);
        } else {
            self.process_block(&block);
            let mut last = [0u8; 64];
            last[56..].copy_from_slice(&bit_len.to_be_bytes());
            self.process_block(&last);
        }
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        Self::compress(&mut self.state, block);
    }

    fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        #[cfg(target_arch = "x86_64")]
        if shani::try_compress(state, block) {
            return;
        }
        Self::compress_scalar(state, block);
    }

    fn compress_scalar(state: &mut [u32; 8], block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }

    /// Renders a digest as lowercase hex.
    pub fn to_hex(digest: &[u8; 32]) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut s = String::with_capacity(64);
        for b in digest {
            s.push(HEX[(b >> 4) as usize] as char);
            s.push(HEX[(b & 0x0f) as usize] as char);
        }
        s
    }

    /// Computes an HMAC-SHA256 MAC (RFC 2104 construction).
    pub fn hmac(key: &[u8], message: &[u8]) -> [u8; 32] {
        let mut key_block = [0u8; 64];
        if key.len() > 64 {
            let kd = Sha256::digest(key);
            key_block[..32].copy_from_slice(&kd);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut inner = Sha256::new();
        let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
        inner.update(&ipad);
        inner.update(message);
        let inner_digest = inner.finalize();
        let mut outer = Sha256::new();
        let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
        outer.update(&opad);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

/// Hardware-accelerated compression via the x86 SHA extensions. Produces
/// exactly the FIPS 180-4 state transition, so digests are bit-identical to
/// the scalar path; selection is a runtime CPU-feature check.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod shani {
    use super::K;
    use core::arch::x86_64::*;

    /// Whether the CPU supports the SHA extensions (and the SSE levels the
    /// kernel routine needs). `is_x86_feature_detected!` caches the CPUID
    /// probe, so this is an atomic load after the first call.
    #[inline]
    fn available() -> bool {
        std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("ssse3")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }

    /// Compresses one block with the SHA extensions; returns `false` (doing
    /// nothing) on CPUs without them so the caller can fall back to scalar.
    #[inline]
    pub fn try_compress(state: &mut [u32; 8], block: &[u8; 64]) -> bool {
        if !available() {
            return false;
        }
        // SAFETY: `available()` verified the sha/ssse3/sse4.1 features at
        // runtime.
        unsafe { compress(state, block) };
        true
    }

    /// One 64-byte block, following Intel's canonical SHA-NI schedule.
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    unsafe fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        // Byte shuffle turning little-endian loads into big-endian words.
        let shuf = _mm_set_epi64x(
            0x0c0d_0e0f_0809_0a0bu64 as i64,
            0x0405_0607_0001_0203u64 as i64,
        );

        // Load (a,b,c,d) / (e,f,g,h) and rearrange into the (ABEF, CDGH)
        // lane layout sha256rnds2 expects.
        let abcd = _mm_loadu_si128(state.as_ptr() as *const __m128i);
        let efgh = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i);
        let tmp = _mm_shuffle_epi32(abcd, 0xB1);
        let efgh = _mm_shuffle_epi32(efgh, 0x1B);
        let mut abef = _mm_alignr_epi8(tmp, efgh, 8);
        let mut cdgh = _mm_blend_epi16(efgh, tmp, 0xF0);
        let abef_save = abef;
        let cdgh_save = cdgh;

        // W0..W15.
        let mut m = [
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr() as *const __m128i), shuf),
            _mm_shuffle_epi8(
                _mm_loadu_si128(block.as_ptr().add(16) as *const __m128i),
                shuf,
            ),
            _mm_shuffle_epi8(
                _mm_loadu_si128(block.as_ptr().add(32) as *const __m128i),
                shuf,
            ),
            _mm_shuffle_epi8(
                _mm_loadu_si128(block.as_ptr().add(48) as *const __m128i),
                shuf,
            ),
        ];

        for j in 0..16 {
            let w = if j < 4 {
                m[j]
            } else {
                // W[4j..4j+4] from the four preceding word groups.
                let t = _mm_sha256msg1_epu32(m[0], m[1]);
                let t = _mm_add_epi32(t, _mm_alignr_epi8(m[3], m[2], 4));
                let n = _mm_sha256msg2_epu32(t, m[3]);
                m[0] = m[1];
                m[1] = m[2];
                m[2] = m[3];
                m[3] = n;
                n
            };
            let k = _mm_loadu_si128(K.as_ptr().add(4 * j) as *const __m128i);
            let wk = _mm_add_epi32(w, k);
            cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
            let wk_hi = _mm_shuffle_epi32(wk, 0x0E);
            abef = _mm_sha256rnds2_epu32(abef, cdgh, wk_hi);
        }

        let abef = _mm_add_epi32(abef, abef_save);
        let cdgh = _mm_add_epi32(cdgh, cdgh_save);

        // Back to the (a,b,c,d) / (e,f,g,h) layout.
        let tmp = _mm_shuffle_epi32(abef, 0x1B);
        let cdgh = _mm_shuffle_epi32(cdgh, 0xB1);
        let abcd = _mm_blend_epi16(tmp, cdgh, 0xF0);
        let efgh = _mm_alignr_epi8(cdgh, tmp, 8);
        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, abcd);
        _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, efgh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            Sha256::to_hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            Sha256::to_hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            Sha256::to_hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_repeated_vector() {
        // One million 'a' characters (FIPS 180-4 test vector).
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            Sha256::to_hex(&Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(10_000).collect();
        let oneshot = Sha256::digest(&data);
        let mut h = Sha256::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0b; 20];
        let mac = Sha256::hmac(&key, b"Hi There");
        assert_eq!(
            Sha256::to_hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        let mac = Sha256::hmac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            Sha256::to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed() {
        let key = vec![0xaa; 131];
        let mac = Sha256::hmac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            Sha256::to_hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_inputs_different_digests() {
        assert_ne!(Sha256::digest(b"hello"), Sha256::digest(b"hellp"));
    }

    #[test]
    fn digest_pair_matches_streaming_concatenation() {
        let a = Sha256::digest(b"left");
        let b = Sha256::digest(b"right");
        let mut h = Sha256::new();
        h.update(&a);
        h.update(&b);
        assert_eq!(Sha256::digest_pair(&a, &b), h.finalize());
    }
}
