//! Structured simulation tracing.
//!
//! The simulated kernel emits [`TraceEvent`]s at interesting points (context
//! switches, interrupts, signal delivery, page faults). A [`TraceSink`]
//! collects them, optionally filtered by [`TraceLevel`]. Tests use the sink
//! to assert that specific kernel paths were exercised; the repro binary can
//! dump it for debugging.

use crate::time::Cycles;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Severity/verbosity level of a trace event.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum TraceLevel {
    /// High-volume events (every op executed).
    Debug,
    /// Normal kernel activity (context switches, syscalls, interrupts).
    #[default]
    Info,
    /// Unusual situations (OOM kills, signal-forced exits).
    Warn,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceLevel::Debug => "DEBUG",
            TraceLevel::Info => "INFO",
            TraceLevel::Warn => "WARN",
        };
        f.write_str(s)
    }
}

/// A single trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time at which the event occurred.
    pub at: Cycles,
    /// Severity.
    pub level: TraceLevel,
    /// Subsystem that emitted the event (e.g. `"sched"`, `"irq"`, `"mm"`).
    pub subsystem: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.at, self.level, self.subsystem, self.message
        )
    }
}

/// Collects trace events emitted by a simulation.
///
/// # Example
///
/// ```
/// use trustmeter_sim::{Cycles, TraceLevel, TraceSink};
/// let mut sink = TraceSink::with_level(TraceLevel::Info);
/// sink.emit(Cycles(10), TraceLevel::Debug, "sched", "ignored".into());
/// sink.emit(Cycles(20), TraceLevel::Info, "sched", "switch 1 -> 2".into());
/// assert_eq!(sink.events().len(), 1);
/// assert_eq!(sink.count_for("sched"), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    min_level: TraceLevel,
    events: Vec<TraceEvent>,
    enabled: bool,
    dropped: u64,
    capacity: Option<usize>,
}

impl TraceSink {
    /// Creates a sink recording events at `Info` level and above.
    pub fn new() -> TraceSink {
        TraceSink::with_level(TraceLevel::Info)
    }

    /// Creates a sink recording events at or above `min_level`.
    pub fn with_level(min_level: TraceLevel) -> TraceSink {
        TraceSink {
            min_level,
            events: Vec::new(),
            enabled: true,
            dropped: 0,
            capacity: None,
        }
    }

    /// Creates a disabled sink that records nothing (the default for large
    /// experiment sweeps, where tracing would dominate memory usage).
    pub fn disabled() -> TraceSink {
        TraceSink {
            min_level: TraceLevel::Warn,
            events: Vec::new(),
            enabled: false,
            dropped: 0,
            capacity: None,
        }
    }

    /// Caps the number of retained events; further events are counted in
    /// [`TraceSink::dropped`] but not stored.
    pub fn with_capacity_limit(mut self, cap: usize) -> TraceSink {
        self.capacity = Some(cap);
        self
    }

    /// Records an event if the sink is enabled and the level passes the
    /// filter.
    ///
    /// Prefer [`TraceSink::emit_with`] on hot paths: `emit` forces the
    /// caller to build the message string even when the sink discards it.
    pub fn emit(
        &mut self,
        at: Cycles,
        level: TraceLevel,
        subsystem: &'static str,
        message: String,
    ) {
        self.emit_with(at, level, subsystem, || message);
    }

    /// Records an event, building the message lazily: the closure runs only
    /// if the sink is enabled, the level passes the filter, and the capacity
    /// limit has not been reached — so filtered emissions allocate nothing.
    ///
    /// ```
    /// use trustmeter_sim::{Cycles, TraceLevel, TraceSink};
    /// let mut sink = TraceSink::disabled();
    /// sink.emit_with(Cycles(1), TraceLevel::Warn, "sched", || {
    ///     unreachable!("never built for a disabled sink")
    /// });
    /// assert!(sink.events().is_empty());
    /// ```
    pub fn emit_with<F: FnOnce() -> String>(
        &mut self,
        at: Cycles,
        level: TraceLevel,
        subsystem: &'static str,
        message: F,
    ) {
        if !self.enabled || level < self.min_level {
            return;
        }
        if let Some(cap) = self.capacity {
            if self.events.len() >= cap {
                self.dropped += 1;
                return;
            }
        }
        self.events.push(TraceEvent {
            at,
            level,
            subsystem,
            message: message(),
        });
    }

    /// All recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events dropped due to the capacity limit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of recorded events from the given subsystem.
    pub fn count_for(&self, subsystem: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.subsystem == subsystem)
            .count()
    }

    /// Whether any recorded message contains the given substring.
    pub fn contains_message(&self, needle: &str) -> bool {
        self.events.iter().any(|e| e.message.contains(needle))
    }

    /// Removes all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering() {
        assert!(TraceLevel::Debug < TraceLevel::Info);
        assert!(TraceLevel::Info < TraceLevel::Warn);
        assert_eq!(format!("{}", TraceLevel::Warn), "WARN");
    }

    #[test]
    fn filters_below_min_level() {
        let mut sink = TraceSink::with_level(TraceLevel::Warn);
        sink.emit(Cycles(1), TraceLevel::Info, "sched", "hello".into());
        sink.emit(Cycles(2), TraceLevel::Warn, "mm", "oom".into());
        assert_eq!(sink.events().len(), 1);
        assert!(sink.contains_message("oom"));
        assert!(!sink.contains_message("hello"));
    }

    #[test]
    fn disabled_records_nothing() {
        let mut sink = TraceSink::disabled();
        sink.emit(Cycles(1), TraceLevel::Warn, "irq", "x".into());
        assert!(sink.events().is_empty());
    }

    #[test]
    fn capacity_limit_drops() {
        let mut sink = TraceSink::new().with_capacity_limit(2);
        for i in 0..5 {
            sink.emit(Cycles(i), TraceLevel::Info, "sched", format!("e{i}"));
        }
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.dropped(), 3);
        sink.clear();
        assert_eq!(sink.dropped(), 0);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn emit_with_is_lazy() {
        let mut sink = TraceSink::with_level(TraceLevel::Warn);
        let mut built = 0;
        sink.emit_with(Cycles(1), TraceLevel::Info, "sched", || {
            built += 1;
            "filtered".into()
        });
        assert_eq!(built, 0, "filtered emission must not build the message");
        sink.emit_with(Cycles(2), TraceLevel::Warn, "mm", || {
            built += 1;
            "oom".into()
        });
        assert_eq!(built, 1);
        assert!(sink.contains_message("oom"));

        // At capacity the closure is not run either.
        let mut capped = TraceSink::new().with_capacity_limit(1);
        capped.emit(Cycles(1), TraceLevel::Info, "sched", "kept".into());
        capped.emit_with(Cycles(2), TraceLevel::Info, "sched", || {
            panic!("dropped emission must not build the message")
        });
        assert_eq!(capped.dropped(), 1);
    }

    #[test]
    fn count_and_display() {
        let mut sink = TraceSink::new();
        sink.emit(Cycles(3), TraceLevel::Info, "irq", "nic irq".into());
        sink.emit(Cycles(4), TraceLevel::Info, "sched", "switch".into());
        assert_eq!(sink.count_for("irq"), 1);
        let s = format!("{}", sink.events()[0]);
        assert!(s.contains("irq"));
        assert!(s.contains("nic irq"));
    }
}
