//! Allocation-recycled buffers for the release path.
//!
//! Every `take_ready` drains the contiguous completion prefix into a
//! `Vec<RunRecord>` that the consumer (a stream pump, the final drain)
//! immediately empties again. Under sustained load that is one heap
//! allocation — often a large one, records carry full audit evidence —
//! per release batch. A [`BufferPool`] keeps the emptied containers and
//! hands their capacity back to the next batch, so the steady state
//! allocates nothing on the release path.
//!
//! The pool is a deliberately boring free list behind a mutex: it is
//! touched once per release *batch* (not per job), so contention is not a
//! concern — the win is the allocator traffic, not the locking. Counters
//! are relaxed atomics so [`BufferPool::stats`] never blocks a release.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Buffers parked in the free list beyond this are dropped instead —
/// a shrinking pipeline should not hoard its high-water capacity forever.
const MAX_IDLE: usize = 8;

/// A point-in-time snapshot of a [`BufferPool`]'s recycling behaviour
/// (all counters monotonic except the `idle*` gauges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PoolStats {
    /// Buffers checked out, total.
    pub acquired: u64,
    /// Checkouts served from the free list (the rest allocated fresh).
    pub reused: u64,
    /// Emptied buffers returned to the free list.
    pub returned: u64,
    /// Buffers currently parked in the free list.
    pub idle: u64,
    /// Total element capacity currently parked (what a fresh batch gets
    /// without touching the allocator).
    pub idle_capacity: u64,
}

impl PoolStats {
    /// Checkouts that had to allocate because the free list was empty.
    pub fn allocated(&self) -> u64 {
        self.acquired - self.reused
    }
}

/// A free list of `Vec<T>` containers that keeps capacity alive across
/// checkouts. See the [module docs](self).
#[derive(Debug, Default)]
pub struct BufferPool<T> {
    free: Mutex<Vec<Vec<T>>>,
    acquired: AtomicU64,
    reused: AtomicU64,
    returned: AtomicU64,
}

impl<T> BufferPool<T> {
    /// An empty pool.
    pub fn new() -> BufferPool<T> {
        BufferPool {
            free: Mutex::new(Vec::new()),
            acquired: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            returned: AtomicU64::new(0),
        }
    }

    fn free_list(&self) -> std::sync::MutexGuard<'_, Vec<Vec<T>>> {
        self.free.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Checks out an empty buffer, reusing a parked container (and its
    /// capacity) when one is available.
    pub fn acquire(&self) -> Vec<T> {
        self.acquired.fetch_add(1, Ordering::Relaxed);
        match self.free_list().pop() {
            Some(buffer) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                buffer
            }
            None => Vec::new(),
        }
    }

    /// Gives a buffer back: clears it (dropping any leftover elements) and
    /// parks the container for the next [`BufferPool::acquire`]. Buffers
    /// with no capacity, or arriving when the free list is full, are
    /// simply dropped.
    pub fn release(&self, mut buffer: Vec<T>) {
        buffer.clear();
        if buffer.capacity() == 0 {
            return;
        }
        let mut free = self.free_list();
        if free.len() >= MAX_IDLE {
            return;
        }
        self.returned.fetch_add(1, Ordering::Relaxed);
        free.push(buffer);
    }

    /// A snapshot of the pool counters and gauges.
    pub fn stats(&self) -> PoolStats {
        let free = self.free_list();
        PoolStats {
            acquired: self.acquired.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            returned: self.returned.load(Ordering::Relaxed),
            idle: free.len() as u64,
            idle_capacity: free.iter().map(|b| b.capacity() as u64).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_reuses_released_capacity() {
        let pool: BufferPool<u32> = BufferPool::new();
        let mut buffer = pool.acquire();
        buffer.extend([1, 2, 3]);
        let capacity = buffer.capacity();
        pool.release(buffer);
        let stats = pool.stats();
        assert_eq!(stats.acquired, 1);
        assert_eq!(stats.reused, 0);
        assert_eq!(stats.returned, 1);
        assert_eq!(stats.idle, 1);
        assert_eq!(stats.idle_capacity, capacity as u64);
        let recycled = pool.acquire();
        assert!(recycled.is_empty(), "recycled buffers come back cleared");
        assert_eq!(recycled.capacity(), capacity);
        let stats = pool.stats();
        assert_eq!(stats.reused, 1);
        assert_eq!(stats.allocated(), 1);
        assert_eq!(stats.idle, 0);
    }

    #[test]
    fn zero_capacity_buffers_are_not_parked() {
        let pool: BufferPool<u32> = BufferPool::new();
        pool.release(Vec::new());
        assert_eq!(pool.stats().idle, 0);
        assert_eq!(pool.stats().returned, 0);
    }

    #[test]
    fn free_list_is_bounded() {
        let pool: BufferPool<u32> = BufferPool::new();
        for _ in 0..2 * MAX_IDLE {
            pool.release(Vec::with_capacity(4));
        }
        let stats = pool.stats();
        assert_eq!(stats.idle, MAX_IDLE as u64);
        assert_eq!(stats.returned, MAX_IDLE as u64);
    }
}
