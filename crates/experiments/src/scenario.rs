//! Scenario runner: one victim workload, optionally one attack, one
//! simulated machine — returning everything the figures and the
//! trust-analysis layer need.

use serde::{Deserialize, Serialize};
use trustmeter_attacks::Attack;
use trustmeter_core::{CpuTime, Digest, SchemeKind, SourceIntegrityReport, TaskId};
use trustmeter_kernel::{Kernel, KernelConfig, KernelStats};
use trustmeter_workloads::Workload;

/// A victim workload running on a configured machine.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Kernel/machine configuration.
    pub config: KernelConfig,
    /// Workload scale factor (1.0 = the paper's full-size runs).
    pub scale: f64,
    /// The victim workload.
    pub workload: Workload,
    /// The victim's nice value.
    pub victim_nice: i8,
}

impl Scenario {
    /// Creates a scenario on the paper's machine at the given scale.
    pub fn new(workload: Workload, scale: f64) -> Scenario {
        Scenario {
            config: KernelConfig::paper_machine(),
            scale,
            workload,
            victim_nice: 0,
        }
    }

    /// Replaces the kernel configuration.
    pub fn with_config(mut self, config: KernelConfig) -> Scenario {
        self.config = config;
        self
    }

    /// Runs the scenario without any attack.
    pub fn run_clean(&self) -> ScenarioOutcome {
        self.run_inner(None)
    }

    /// Runs the scenario with the given attack installed and launched.
    pub fn run_attacked(&self, attack: &dyn Attack) -> ScenarioOutcome {
        self.run_inner(Some(attack))
    }

    fn run_inner(&self, attack: Option<&dyn Attack>) -> ScenarioOutcome {
        let mut kernel = Kernel::new(self.config.clone());
        if let Some(a) = attack {
            a.install(&mut kernel);
        }
        let victim = kernel.spawn_process(self.workload.build(self.scale), self.victim_nice);
        if let Some(a) = attack {
            a.launch(&mut kernel, victim, Some(self.workload));
        }
        let result = kernel.run();
        let measured_images: Vec<String> = kernel
            .measurement_log(victim)
            .map(|log| log.entries().iter().map(|e| e.name.clone()).collect())
            .unwrap_or_default();
        let measurement_pcr = kernel
            .measurement_log(victim)
            .map(|l| l.pcr())
            .unwrap_or(Digest::ZERO);
        let witness_digest = kernel
            .witness(victim)
            .map(|w| w.digest())
            .unwrap_or(Digest::ZERO);
        let verify = |whitelist: &[String]| -> SourceIntegrityReport {
            kernel
                .measurement_log(victim)
                .map(|log| log.verify(whitelist.iter().map(|s| s.as_str()), log.pcr()))
                .unwrap_or_else(|| SourceIntegrityReport {
                    unexpected: Vec::new(),
                    missing: Vec::new(),
                    pcr_consistent: true,
                })
        };
        // Capture the integrity report against the victim's own closure so a
        // later caller can also re-verify against an external whitelist via
        // `measured_images`.
        let self_report = verify(&measured_images);

        let victim_usage = result
            .process(victim)
            .cloned()
            .expect("victim process present in results");

        // Aggregate non-victim processes by name (the scheduling attacker
        // forks thousands of short-lived children that would otherwise each
        // get their own row).
        let mut others_map: std::collections::BTreeMap<String, (CpuTime, CpuTime)> =
            std::collections::BTreeMap::new();
        for p in &result.processes {
            if p.tgid != victim {
                let entry = others_map.entry(p.name.clone()).or_default();
                entry.0 += p.billed();
                entry.1 += p.ground_truth();
            }
        }
        let others: Vec<(String, CpuTime, CpuTime)> = others_map
            .into_iter()
            .map(|(n, (b, t))| (n, b, t))
            .collect();

        ScenarioOutcome {
            attack_name: attack.map(|a| a.name().to_string()),
            workload: self.workload,
            victim_pid: victim,
            frequency_khz: self.config.frequency.khz(),
            victim_billed: victim_usage.billed(),
            victim_truth: victim_usage.usage(SchemeKind::Tsc),
            victim_process_aware: victim_usage.usage(SchemeKind::ProcessAware),
            victim_threads: victim_usage.threads,
            others,
            elapsed_secs: result.elapsed_secs(),
            stats: result.stats,
            hit_horizon: result.hit_horizon,
            measured_images,
            measurement_pcr,
            witness_digest,
            self_integrity_ok: self_report.is_trustworthy(),
        }
    }
}

/// Everything a single scenario run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Name of the attack, if one was active.
    pub attack_name: Option<String>,
    /// The victim workload.
    pub workload: Workload,
    /// The victim's pid.
    pub victim_pid: TaskId,
    /// CPU frequency in kHz (for converting the stored cycle counts).
    pub frequency_khz: u64,
    /// What the provider bills (commodity tick accounting), thread-group
    /// total.
    pub victim_billed: CpuTime,
    /// Fine-grained TSC ground truth.
    pub victim_truth: CpuTime,
    /// Process-aware accounting reading.
    pub victim_process_aware: CpuTime,
    /// Number of victim threads.
    pub victim_threads: u32,
    /// Other processes in the run: `(name, billed, ground truth)`.
    pub others: Vec<(String, CpuTime, CpuTime)>,
    /// Virtual wall-clock duration of the run.
    pub elapsed_secs: f64,
    /// Kernel statistics.
    pub stats: KernelStats,
    /// Whether the simulation hit its safety horizon.
    pub hit_horizon: bool,
    /// Names of every image measured into the victim's context.
    pub measured_images: Vec<String>,
    /// PCR over the victim's measurement log.
    pub measurement_pcr: Digest,
    /// Digest of the victim's execution witness.
    pub witness_digest: Digest,
    /// Whether the victim's log verifies against its own closure (always
    /// true; present as a sanity field).
    pub self_integrity_ok: bool,
}

impl ScenarioOutcome {
    fn secs(&self, cycles: trustmeter_sim::Cycles) -> f64 {
        cycles.as_f64() / (self.frequency_khz as f64 * 1_000.0)
    }

    /// Billed user time in seconds.
    pub fn billed_utime_secs(&self) -> f64 {
        self.secs(self.victim_billed.utime)
    }

    /// Billed system time in seconds.
    pub fn billed_stime_secs(&self) -> f64 {
        self.secs(self.victim_billed.stime)
    }

    /// Billed total CPU seconds.
    pub fn billed_total_secs(&self) -> f64 {
        self.billed_utime_secs() + self.billed_stime_secs()
    }

    /// Ground-truth total CPU seconds.
    pub fn truth_total_secs(&self) -> f64 {
        self.secs(self.victim_truth.total())
    }

    /// Ground-truth system seconds.
    pub fn truth_stime_secs(&self) -> f64 {
        self.secs(self.victim_truth.stime)
    }

    /// Process-aware total CPU seconds.
    pub fn process_aware_total_secs(&self) -> f64 {
        self.secs(self.victim_process_aware.total())
    }

    /// Billed total of another process by name (0.0 if absent).
    pub fn other_billed_total_secs(&self, name: &str) -> f64 {
        self.others
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, billed, _)| self.secs(billed.total()))
            .unwrap_or(0.0)
    }

    /// Names of measured images that do not appear in `whitelist` —
    /// injected code detected by the source-integrity property.
    pub fn unexpected_images<'a>(&'a self, whitelist: &[String]) -> Vec<&'a str> {
        self.measured_images
            .iter()
            .filter(|m| !whitelist.contains(m))
            .map(|s| s.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustmeter_attacks::ShellAttack;

    #[test]
    fn clean_scenario_runs_and_reports() {
        let outcome = Scenario::new(Workload::LoopO, 0.002).run_clean();
        assert!(outcome.attack_name.is_none());
        assert!(!outcome.hit_horizon);
        assert!(outcome.billed_total_secs() > 0.0);
        assert!(outcome.truth_total_secs() > 0.0);
        assert!(outcome.self_integrity_ok);
        assert!(outcome.measured_images.iter().any(|m| m == "O"));
        assert!(outcome.others.is_empty());
    }

    #[test]
    fn attacked_scenario_reports_attack_and_injected_image() {
        let attack = ShellAttack::paper_default(0.002);
        let clean = Scenario::new(Workload::LoopO, 0.002).run_clean();
        let attacked = Scenario::new(Workload::LoopO, 0.002).run_attacked(&attack);
        assert_eq!(attacked.attack_name.as_deref(), Some("shell"));
        assert!(attacked.billed_total_secs() > clean.billed_total_secs());
        let unexpected = attacked.unexpected_images(&clean.measured_images);
        assert_eq!(unexpected, vec!["shell-injected-loop"]);
        // The witness also diverges from the clean run.
        assert_ne!(attacked.witness_digest, clean.witness_digest);
    }

    #[test]
    fn outcome_serializes() {
        let outcome = Scenario::new(Workload::Pi, 0.001).run_clean();
        let json = serde_json::to_string(&outcome).expect("serialize");
        assert!(json.contains("victim_billed"));
    }
}
