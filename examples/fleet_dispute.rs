//! Dispute settlement from sealed evidence: a tenant challenges a bill,
//! and the provider answers with *proof*, not with "trust my database".
//!
//! A fleet meters a mixed batch into a hash-chained, block-sealed
//! journal. A tenant disputes two invoices — one clean run, one run hit
//! by a scheduling attacker that inflated the bill. The service settles
//! both from the sealed ledger alone: it emits inclusion proofs (Merkle
//! path + signed block header) pinning the invoice and the audit verdict
//! to exact journal lines, and the tenant re-verifies every proof with
//! nothing but the fleet's seal key — no journal replay, no access to
//! the provider's live ledger. A tampered copy of the same journal is
//! then shown failing verification at the precise forged line.
//!
//! ```text
//! cargo run --release --example fleet_dispute
//! ```

use trustmeter::prelude::*;

const SCALE: f64 = 0.002;
const SEED: u64 = 0xd15b;

fn main() {
    let dir = std::env::temp_dir().join(format!("trustmeter-dispute-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // An evidence ledger: small segments so the batch seals several
    // blocks, every line hash-chained, every rotated segment signed.
    let config = SegmentConfig::default()
        .with_segment_bytes(8 * 1024)
        .with_seal(SEED);
    let journal = Journal::segmented(&dir, config).expect("open evidence ledger");

    let mut service = FleetService::new(FleetConfig::new(4, SEED)).with_journal(journal.clone());
    service.register(Tenant::new(
        TenantId(1),
        "acme-corp",
        RateCard::per_cpu_hour(0.10),
    ));
    service.register(Tenant::new(
        TenantId(2),
        "bit-mill",
        RateCard::per_cpu_hour(0.12),
    ));

    // 24 jobs; job 5 is hit by the paper's fork/wait scheduling attacker,
    // which inflates the tick-accounted bill over an unchanged truth.
    let jobs: Vec<JobSpec> = (0..24u64)
        .map(|id| {
            let tenant = TenantId((id % 2) as u32 + 1);
            let workload = Workload::ALL[(id % 4) as usize];
            if id == 5 {
                JobSpec::attacked(
                    id,
                    tenant,
                    workload,
                    SCALE,
                    AttackSpec::Scheduling { nice: -10 },
                )
            } else {
                JobSpec::clean(id, tenant, workload, SCALE)
            }
        })
        .collect();
    service.process(&jobs);
    let stats = journal.stats();
    println!(
        "metered 24 jobs: {} journal entries, {} segments sealed",
        stats.appends, stats.seals
    );

    // --- The tenant disputes a clean invoice -----------------------------
    let clean = service.dispute(JobId(4)).expect("settle job 4");
    println!(
        "\njob 4 settled from {} sealed proofs: billed/truth = {:.4}, flagged = {}",
        clean.proofs.len(),
        clean.overcharge_ratio().expect("sealed invoice present"),
        clean.flagged(),
    );
    assert!(!clean.flagged(), "the clean run settles clean");

    // --- And the attacked one --------------------------------------------
    let attacked = service.dispute(JobId(5)).expect("settle job 5");
    let ratio = attacked.overcharge_ratio().expect("sealed invoice present");
    println!(
        "job 5 settled from {} sealed proofs: billed/truth = {ratio:.4}, flagged = {}",
        attacked.proofs.len(),
        attacked.flagged(),
    );
    assert!(attacked.flagged(), "the sealed verdict carries the anomaly");
    assert!(ratio > 1.0, "the overcharge is visible in sealed evidence");

    // --- The tenant re-checks the proofs independently -------------------
    // Only the seal key is needed: each proof carries its journal line,
    // Merkle path and signed block header.
    let key = SealKey::from_seed(SEED);
    for proof in attacked.proofs.iter().chain(&clean.proofs) {
        let entry = proof.verify(&key).expect("proof verifies standalone");
        println!(
            "  verified {:<10} in segment {} (leaf {})",
            entry.label(),
            proof.header.segment,
            proof.index
        );
    }

    // --- A forged copy of the ledger cannot pass -------------------------
    // The provider's operator doubles a Run line in a copied directory —
    // the classic double-billing edit. The chain walk names the exact
    // line.
    let forged_dir = std::env::temp_dir().join(format!("trustmeter-forged-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&forged_dir);
    std::fs::create_dir_all(&forged_dir).expect("create forged copy");
    for file in std::fs::read_dir(&dir).expect("read ledger dir") {
        let path = file.expect("dir entry").path();
        std::fs::copy(&path, forged_dir.join(path.file_name().expect("file name")))
            .expect("copy ledger file");
    }
    let segment = std::fs::read_dir(&forged_dir)
        .expect("read forged dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
        .min()
        .expect("a segment to forge");
    let text = std::fs::read_to_string(&segment).expect("read segment");
    let mut lines: Vec<&str> = text.lines().collect();
    let run_at = lines
        .iter()
        .position(|l| l.contains("\"Run\""))
        .expect("a run line to double");
    lines.insert(run_at + 1, lines[run_at]);
    std::fs::write(&segment, format!("{}\n", lines.join("\n"))).expect("write forged segment");

    let forged = Journal::segmented(&forged_dir, config).expect("open forged copy");
    match forged.entries() {
        Err(JournalError::ChainViolation { line, message }) => {
            println!("\nforged copy rejected at line {line}: {message}");
        }
        other => panic!("the forgery must be detected, got {other:?}"),
    }

    // The untampered ledger, of course, still verifies end to end.
    journal.seal().expect("seal the head");
    let verification = journal.verify(SEED).expect("verify the evidence ledger");
    println!(
        "untampered ledger verifies: {} entries, {} sealed blocks",
        verification.entries, verification.seals_verified
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&forged_dir);
}
