//! Reproduces every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p trustmeter-experiments --bin repro [-- --scale 0.01] [--out results]
//! ```
//!
//! Prints each figure's series next to the paper's qualitative expectation
//! and writes machine-readable JSON into the output directory.

use std::fs;
use std::path::PathBuf;
use trustmeter_experiments::{
    all_ablations, all_figures, comparison_table, defenses, ExperimentConfig,
};

struct Args {
    scale: f64,
    out: PathBuf,
    skip_ablations: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.01,
        out: PathBuf::from("results"),
        skip_ablations: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                if let Some(v) = it.next() {
                    args.scale = v.parse().unwrap_or(args.scale);
                }
            }
            "--out" => {
                if let Some(v) = it.next() {
                    args.out = PathBuf::from(v);
                }
            }
            "--skip-ablations" => args.skip_ablations = true,
            "--help" | "-h" => {
                println!("repro [--scale FACTOR] [--out DIR] [--skip-ablations]");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown argument: {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = ExperimentConfig {
        scale: args.scale,
        ..Default::default()
    };
    println!(
        "trustmeter repro — workload scale {}, seed {:#x}\n",
        cfg.scale, cfg.seed
    );
    fs::create_dir_all(&args.out).expect("create output directory");

    let figures = all_figures(&cfg);
    for fig in &figures {
        println!("{fig}");
        let path = args.out.join(format!("{}.json", fig.id));
        fs::write(
            &path,
            serde_json::to_string_pretty(fig).expect("serialize figure"),
        )
        .expect("write figure JSON");
        fs::write(
            args.out.join(format!("{}.csv", fig.id)),
            trustmeter_experiments::export::figure_to_csv(fig),
        )
        .expect("write figure CSV");
        fs::write(
            args.out.join(format!("{}.md", fig.id)),
            trustmeter_experiments::export::figure_to_markdown(fig),
        )
        .expect("write figure Markdown");
    }

    println!("=== Section V-C — attack comparison ===");
    let table = comparison_table(&cfg);
    println!("{table}");
    fs::write(
        args.out.join("comparison.json"),
        serde_json::to_string_pretty(&table).expect("serialize table"),
    )
    .expect("write comparison JSON");

    println!("=== Section VI-B — defenses ===");
    let report = defenses(&cfg);
    println!(
        "scheduling attack: tick inflation {:.2}x vs TSC inflation {:.2}x",
        report.scheduling_tick_inflation, report.scheduling_tsc_inflation
    );
    println!(
        "interrupt flood:   victim stime {:.3}s (TSC) vs {:.3}s (process-aware)",
        report.irqflood_tsc_stime_secs, report.irqflood_process_aware_stime_secs
    );
    println!(
        "measured launch:   shell attack flagged {:?}, preload attack flagged {:?}, clean run ok: {}",
        report.shell_attack_flagged, report.preload_attack_flagged, report.clean_run_verifies
    );
    println!(
        "all defenses effective: {}\n",
        report.all_defenses_effective()
    );
    fs::write(
        args.out.join("defenses.json"),
        serde_json::to_string_pretty(&report).expect("serialize defenses"),
    )
    .expect("write defenses JSON");

    if !args.skip_ablations {
        for fig in all_ablations(&cfg) {
            println!("{fig}");
            fs::write(
                args.out.join(format!("{}.json", fig.id)),
                serde_json::to_string_pretty(&fig).expect("serialize ablation"),
            )
            .expect("write ablation JSON");
        }
    }

    println!("results written to {}", args.out.display());
}
