//! End-to-end integration tests spanning every crate: each of the paper's
//! attacks run through the public facade, checked for the qualitative effect
//! the paper reports.

use trustmeter::prelude::*;

const SCALE: f64 = 0.002;

fn clean(workload: Workload) -> ScenarioOutcome {
    Scenario::new(workload, SCALE).run_clean()
}

#[test]
fn honest_platform_bills_close_to_ground_truth() {
    for w in Workload::ALL {
        let outcome = clean(w);
        assert!(!outcome.hit_horizon);
        let billed = outcome.billed_total_secs();
        let truth = outcome.truth_total_secs();
        let rel = (billed - truth).abs() / truth;
        assert!(rel < 0.1, "{w}: billed {billed} vs truth {truth}");
    }
}

#[test]
fn shell_attack_adds_a_constant_to_every_program() {
    let attack = ShellAttack::paper_default(SCALE);
    let injected = 34.0 * SCALE;
    for w in Workload::ALL {
        let base = clean(w);
        let attacked = Scenario::new(w, SCALE).run_attacked(&attack);
        let growth = attacked.billed_utime_secs() - base.billed_utime_secs();
        assert!(
            (growth - injected).abs() < injected * 0.4,
            "{w}: user-time growth {growth}, expected ≈ {injected}"
        );
    }
}

#[test]
fn preload_constructor_attack_is_detected_by_measured_launch() {
    let attack = PreloadConstructorAttack::paper_default(SCALE);
    let base = clean(Workload::Brute);
    let attacked = Scenario::new(Workload::Brute, SCALE).run_attacked(&attack);
    let unexpected = attacked.unexpected_images(&base.measured_images);
    assert!(unexpected.iter().any(|n| n.contains("attack_preload.so")));
    assert!(attacked.billed_total_secs() > base.billed_total_secs());
}

#[test]
fn interposition_attack_amplifies_with_library_usage() {
    let attack = InterpositionAttack::paper_default(SCALE);
    // Whetstone makes many more libm calls than O does; its inflation in
    // absolute seconds should be larger.
    let o_clean = clean(Workload::LoopO);
    let w_clean = clean(Workload::Whetstone);
    let o_attacked = Scenario::new(Workload::LoopO, SCALE).run_attacked(&attack);
    let w_attacked = Scenario::new(Workload::Whetstone, SCALE).run_attacked(&attack);
    let o_growth = o_attacked.billed_total_secs() - o_clean.billed_total_secs();
    let w_growth = w_attacked.billed_total_secs() - w_clean.billed_total_secs();
    assert!(
        w_growth > o_growth,
        "W growth {w_growth} should exceed O growth {o_growth}"
    );
}

#[test]
fn scheduling_attack_inflates_bill_but_not_ground_truth() {
    let attack = SchedulingAttack::paper_default(SCALE, -15);
    let base = clean(Workload::Whetstone);
    let attacked = Scenario::new(Workload::Whetstone, SCALE).run_attacked(&attack);
    assert!(attacked.billed_total_secs() > base.billed_total_secs() * 1.2);
    // Fine-grained metering is immune.
    let truth_ratio = attacked.truth_total_secs() / base.truth_total_secs();
    assert!(
        (truth_ratio - 1.0).abs() < 0.05,
        "truth ratio {truth_ratio}"
    );
}

#[test]
fn thrashing_attack_shows_up_as_system_time_and_debug_traps() {
    let attack = ThrashingAttack::paper_default();
    let base = clean(Workload::Pi);
    let attacked = Scenario::new(Workload::Pi, SCALE).run_attacked(&attack);
    assert!(attacked.stats.debug_traps > 1_000);
    assert!(attacked.truth_stime_secs() > base.truth_stime_secs());
    assert!(attacked.billed_total_secs() > base.billed_total_secs());
}

#[test]
fn interrupt_flood_is_neutralised_by_process_aware_accounting() {
    let attack = InterruptFloodAttack::paper_default();
    let attacked = Scenario::new(Workload::LoopO, SCALE).run_attacked(&attack);
    assert!(attacked.stats.device_interrupts > 100);
    // The victim did not ask for those packets: process-aware accounting
    // charges it less system time than the naive fine-grained scheme.
    let khz = attacked.frequency_khz as f64 * 1_000.0;
    let pa_stime = attacked.victim_process_aware.stime.as_f64() / khz;
    assert!(pa_stime < attacked.truth_stime_secs());
}

#[test]
fn exception_flood_forces_major_faults_on_the_victim() {
    let config = KernelConfig::paper_machine().with_physical_pages(64 * 1024);
    let scenario = Scenario::new(Workload::Pi, SCALE).with_config(config.clone());
    let base = scenario.run_clean();
    let attack = ExceptionFloodAttack::paper_default(base.elapsed_secs * 3.0);
    let attacked = scenario.run_attacked(&attack);
    assert!(attacked.stats.major_faults > 0);
    assert!(attacked.truth_stime_secs() > base.truth_stime_secs());
}

#[test]
fn execution_witness_differs_only_when_code_differs() {
    let a = clean(Workload::Whetstone);
    let b = clean(Workload::Whetstone);
    assert_eq!(
        a.witness_digest, b.witness_digest,
        "same program, same witness"
    );
    let attacked =
        Scenario::new(Workload::Whetstone, SCALE).run_attacked(&ShellAttack::paper_default(SCALE));
    assert_ne!(
        a.witness_digest, attacked.witness_digest,
        "injected code changes the witness"
    );
    // The scheduling attack does not inject code, so the witness is intact
    // even though the bill is inflated.
    let sched = Scenario::new(Workload::Whetstone, SCALE)
        .run_attacked(&SchedulingAttack::paper_default(SCALE, -10));
    assert_eq!(a.witness_digest, sched.witness_digest);
}

#[test]
fn billing_reflects_the_overcharge() {
    let card = RateCard::per_cpu_hour(0.10);
    let freq = CpuFrequency::E7200;
    let base = clean(Workload::LoopO);
    let attacked =
        Scenario::new(Workload::LoopO, SCALE).run_attacked(&ShellAttack::paper_default(SCALE));
    let clean_invoice = card.invoice(base.victim_billed, freq);
    let attacked_invoice = card.invoice(attacked.victim_billed, freq);
    assert!(attacked_invoice.overcharge_vs(&clean_invoice) > 0.0);
    let report = OverchargeReport::compare(attacked.victim_billed, base.victim_billed, freq);
    assert_eq!(report.verdict, Verdict::Overcharged);
    assert_eq!(report.class, AttackClass::UserTimeInflation);
}
