//! The durable journal: write-ahead persistence, crash recovery and
//! compaction for the fleet.
//!
//! The paper's trust argument only holds if the metering evidence survives
//! the meterer: an in-memory ledger is exactly the mutable accounting state
//! a crash — or a cheating provider — can rewrite. This module makes the
//! fleet's accounting *append-only and replayable*: every accounting-
//! relevant event is serialized as one JSON line (via the vendored
//! `serde_json`) into a [`Journal`] **before** its effects are released,
//! so a restarted service can rebuild bit-identical
//! [`crate::Ledger`]/[`crate::TenantAuditSummary`]/metrics state with
//! [`crate::FleetService::recover`].
//!
//! Five typed entries ([`JournalEntry`]):
//!
//! * **`Accepted`** — a [`JobSpec`] the ingest pipeline admitted,
//!   appended at `submit` time *before* the job becomes visible to any
//!   worker. This closes the submission-side durability gap: a crash
//!   between acceptance and release no longer silently loses the job —
//!   recovery reports accepted-but-unreleased specs
//!   ([`RecoveryReport::unreleased`]) so a restarted service resubmits
//!   them deterministically.
//! * **`Run`** — a completed [`RunRecord`], appended by the ingest
//!   pipeline's completion log *before* the record is released to the
//!   consumer (the write-ahead point). A record that was never journaled
//!   was never released, so it was never billed: crash-lost work simply
//!   never happened.
//! * **`Invoice`** — the ledger posting derived from a run (both the
//!   billed and the ground-truth invoice), appended when the service
//!   posts the record.
//! * **`Verdict`** — the audit verdict for a run, appended alongside the
//!   invoice. Together, `Invoice` + `Verdict` are the durable *receipts*:
//!   recovery re-derives both from the `Run` entry and cross-checks them,
//!   so a journal whose receipts were tampered with after the fact is
//!   detected (see [`RecoveryReport::mismatches`]).
//! * **`Checkpoint`** — a folded prefix: ledger, audit summaries and
//!   metrics as of some run count, produced by [`compact`] so long-running
//!   fleets do not replay from genesis.
//!
//! A truncated tail — the partial, newline-less last line a crash
//! mid-append leaves behind — is detected at parse time and dropped
//! ([`TailStatus`]), and [`FileSink::open`] repairs it before appending
//! so a restarted process never merges new entries into the torn
//! fragment. Any unparseable line that *is* newline-terminated was fully
//! written and later damaged, so it is an error ([`JournalError::Corrupt`]),
//! wherever it sits.
//!
//! ## The evidence ledger
//!
//! Since PR 7 the journal is tamper-*evident*, not just crash-safe: every
//! line is a chained envelope `{"prev":"<hex>","entry":{…}}` whose `prev`
//! is the hash-chain link over all preceding canonical line bytes (see
//! [`crate::evidence`]), so duplication, reordering, deletion and
//! in-place edits before the torn tail surface at [`parse_journal`] time
//! as [`JournalError::ChainViolation`] naming the first bad entry. A
//! sealing [`SegmentedFileSink`] ([`SegmentConfig::with_seal`])
//! additionally signs every rotated-away segment into a
//! [`BlockHeader`] sidecar — Merkle root over the segment's lines, chain
//! bounds, the checkpoint metric-family exclusion list, HMAC under the
//! fleet seed's [`SealKey`] — and can hand out per-entry
//! [`InclusionProof`]s ([`Journal::prove`]) that verify against the seal
//! key alone, no replay required (the substrate of
//! [`crate::FleetService::dispute`]).
//!
//! ## The group-commit write path
//!
//! The write-ahead point must be cheap enough to run always-on, so the
//! journal batches. Producers hand the journal *groups* of entries —
//! the ingest pipeline's whole ready prefix ([`Journal::append_runs`]),
//! a posting's Run/Invoice/Verdict triple ([`Journal::append_posting`]),
//! a pump's receipt batch ([`Journal::append_receipts`]) — which are
//! serialized back to back into one reused buffer (via the vendored
//! `serde_json`'s buffer-reusing [`serde_json::Serializer`]) and
//! committed with a single [`JournalSink::append_lines`] call: one
//! write, one flush/fsync decision, zero per-entry allocation.
//!
//! [`SegmentedFileSink`] is the production file sink: `BufWriter`-backed
//! segment files rotated at a size threshold ([`SegmentConfig`]), an
//! [`FsyncPolicy`] (never / every append / group commit), and retirement
//! of segments older than the latest [`JournalEntry::Checkpoint`] —
//! written automatically by a [`CheckpointCadence`]-configured service —
//! so the journal's disk footprint and recovery cost are both bounded.
//! The PR-4 [`FileSink`] (one flush per entry, one ever-growing file) is
//! retained as the legacy comparison point.
//!
//! ```
//! use trustmeter_fleet::{FleetConfig, FleetService, JobSpec, Journal, TenantId};
//! use trustmeter_workloads::Workload;
//!
//! let journal = Journal::in_memory();
//! let mut service = FleetService::new(FleetConfig::new(1, 42)).with_journal(journal.clone());
//! service.process(&[JobSpec::clean(0, TenantId(1), Workload::LoopO, 0.001)]);
//!
//! // The journal now holds Run + Invoice + Verdict for the job; a fresh
//! // service replays it into bit-identical state.
//! let (entries, _tail) = journal.entries().unwrap();
//! let mut restarted = FleetService::new(FleetConfig::new(1, 42));
//! let report = restarted.recover(&entries).unwrap();
//! assert_eq!(report.runs_replayed, 1);
//! assert_eq!(restarted.ledger(), service.ledger());
//! ```

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use crate::auditor::{AuditVerdict, AuditorState};
use crate::evidence::{self, BlockHeader, ChainDigest, ChainedLine, InclusionProof, SealKey};
use crate::executor::{JobId, JobSpec, RunRecord};
use crate::metrics::MetricsRegistry;
use crate::tenant::{Ledger, TenantId};
use crate::FleetService;
use trustmeter_core::Invoice;

/// One append-only journal record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEntry {
    /// A job the ingest pipeline accepted, journaled at submit time
    /// before the job is visible to any worker (the submission-side
    /// write-ahead point).
    Accepted(JobSpec),
    /// A completed run, journaled before it is released to the consumer
    /// (boxed: a `RunRecord` is by far the largest entry).
    Run(Box<RunRecord>),
    /// The ledger posting a run produced (the billing receipt).
    Invoice(InvoicePosting),
    /// The audit verdict a run produced (the audit receipt).
    Verdict(AuditVerdict),
    /// A folded journal prefix (see [`compact`]).
    Checkpoint(Box<Checkpoint>),
    /// A job declared **poison** by the ingest supervisor: it killed
    /// `max_job_attempts` workers in a row, was individually quarantined
    /// at its release point (the rest of the fleet keeps flowing), and
    /// this chained entry is its tenant-visible verdict — journaled in
    /// release order, exactly where the job's `Run` entry would have
    /// been.
    Poisoned(PoisonNotice),
}

impl JournalEntry {
    /// Wraps an accepted job spec.
    pub fn accepted(spec: JobSpec) -> JournalEntry {
        JournalEntry::Accepted(spec)
    }

    /// Wraps a completed run.
    pub fn run(record: RunRecord) -> JournalEntry {
        JournalEntry::Run(Box::new(record))
    }

    /// Wraps a checkpoint.
    pub fn checkpoint(checkpoint: Checkpoint) -> JournalEntry {
        JournalEntry::Checkpoint(Box::new(checkpoint))
    }

    /// Wraps a poison-job verdict.
    pub fn poisoned(notice: PoisonNotice) -> JournalEntry {
        JournalEntry::Poisoned(notice)
    }
}

impl JournalEntry {
    /// The job this entry belongs to (`None` for checkpoints).
    pub fn job(&self) -> Option<JobId> {
        match self {
            JournalEntry::Accepted(spec) => Some(spec.id),
            JournalEntry::Run(record) => Some(record.job.id),
            JournalEntry::Invoice(posting) => Some(posting.job),
            JournalEntry::Verdict(verdict) => Some(verdict.job),
            JournalEntry::Checkpoint(_) => None,
            JournalEntry::Poisoned(notice) => Some(notice.spec.id),
        }
    }

    /// Short stable label for display and diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            JournalEntry::Accepted(_) => "accepted",
            JournalEntry::Run(_) => "run",
            JournalEntry::Invoice(_) => "invoice",
            JournalEntry::Verdict(_) => "verdict",
            JournalEntry::Checkpoint(_) => "checkpoint",
            JournalEntry::Poisoned(_) => "poisoned",
        }
    }
}

/// The tenant-visible verdict for a poison job (see
/// [`JournalEntry::Poisoned`]): which job, and how many execution
/// attempts — each one a killed worker — it burned before the
/// supervisor gave up. Nothing was billed: the job never released a
/// record, so the never-journaled ⇒ never-billed invariant holds with
/// the `Poisoned` entry standing in for the `Run` that will never come.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoisonNotice {
    /// The poison job, spec and tenant included (the tenant sees whose
    /// job was quarantined).
    pub spec: JobSpec,
    /// Execution attempts consumed (= workers killed in a row).
    pub attempts: u32,
}

/// The billing receipt for one posted run: exactly the invoices the ledger
/// accumulated, so recovery can cross-check its re-derived posting against
/// the journaled one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvoicePosting {
    /// Who was billed.
    pub tenant: TenantId,
    /// Which run.
    pub job: JobId,
    /// The invoice over the provider-billed usage.
    pub billed: Invoice,
    /// The invoice over the TSC ground-truth usage.
    pub truth: Invoice,
}

/// A folded journal prefix: the complete accounting state after replaying
/// some number of runs. Recovery seeds from the latest checkpoint instead
/// of replaying from genesis.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Runs folded into this checkpoint.
    pub runs: u64,
    /// The ledger after those runs.
    pub ledger: Ledger,
    /// The auditor's summaries and cost counters after those runs.
    pub audit: AuditorState,
    /// The full metrics registry after those runs (the exposition is part
    /// of the recovery contract).
    pub metrics: MetricsRegistry,
}

/// Why a journal operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The underlying sink failed (I/O).
    Io(String),
    /// An entry before the tail failed to parse — an append-only journal
    /// can only be damaged at its end, so this is corruption, not a crash
    /// artifact. `line` is 1-based.
    Corrupt {
        /// 1-based line number of the unparseable entry.
        line: usize,
        /// The parser's message.
        message: String,
    },
    /// A chained entry's embedded `prev` link disagrees with the hash
    /// chain recomputed over the preceding canonical line bytes:
    /// duplication, reordering, deletion or in-place edits somewhere at
    /// or before this line. `line` is 1-based and names the **first**
    /// entry the chain no longer vouches for.
    ChainViolation {
        /// 1-based line number of the first entry off the chain.
        line: usize,
        /// What broke (entry label, job id, link mismatch detail).
        message: String,
    },
    /// A sealed segment's block header failed verification: wrong Merkle
    /// root or chain bounds for the segment's contents, or a seal that
    /// does not verify under this fleet's [`evidence::SealKey`].
    SealViolation {
        /// The segment whose seal failed.
        segment: u64,
        /// What broke.
        message: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(message) => write!(f, "journal i/o error: {message}"),
            JournalError::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
            JournalError::ChainViolation { line, message } => {
                write!(f, "journal chain violation at line {line}: {message}")
            }
            JournalError::SealViolation { segment, message } => {
                write!(f, "journal seal violation at segment {segment}: {message}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e.to_string())
    }
}

/// What the parser found at the end of the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailStatus {
    /// Every line parsed.
    Clean,
    /// The final line had no terminating newline — the signature of a
    /// crash mid-append — and was dropped.
    Truncated {
        /// Bytes of tail that were discarded.
        dropped_bytes: usize,
    },
}

impl TailStatus {
    /// Whether the tail was dropped.
    pub fn is_truncated(&self) -> bool {
        matches!(self, TailStatus::Truncated { .. })
    }
}

/// Append/byte counters for one [`Journal`] handle (monotonic; `appends`,
/// `bytes` and `group_commits` count work through this handle since it
/// was opened, not entries already in a reopened file; the rotation /
/// fsync / retirement counters come from the sink and cover the sink's
/// lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct JournalStats {
    /// Entries appended.
    pub appends: u64,
    /// Bytes appended (serialized lines including the newline).
    pub bytes: u64,
    /// Batched commits: groups of entries serialized into one buffer and
    /// handed to the sink as a single [`JournalSink::append_lines`] call.
    /// `appends / group_commits` is the realized batch size.
    pub group_commits: u64,
    /// Segment rotations the sink performed (see [`SegmentedFileSink`]).
    pub rotations: u64,
    /// `fsync` calls the sink issued.
    pub fsyncs: u64,
    /// Segments the sink retired (deleted) as superseded by a checkpoint.
    pub segments_retired: u64,
    /// Sealed block headers the sink wrote (see
    /// [`SegmentConfig::with_seal`]).
    pub seals: u64,
}

/// Sink-level durability counters (all zero for sinks without segments or
/// explicit syncing, e.g. [`MemorySink`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SinkStats {
    /// Segment rotations performed.
    pub rotations: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Segments deleted because a newer checkpoint superseded them.
    pub segments_retired: u64,
    /// Sealed block headers written on rotation (see
    /// [`SegmentConfig::with_seal`]).
    pub seals: u64,
}

/// When a [`SegmentedFileSink`] pushes committed bytes past the OS page
/// cache to the platter. Every policy flushes to the OS per commit, so a
/// *process* crash never loses a committed entry; the policies differ in
/// what an OS crash or power loss can take with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FsyncPolicy {
    /// Never `fsync` — the legacy [`FileSink`] durability level. Power
    /// loss can lose anything not yet written back by the OS.
    #[default]
    Never,
    /// `fsync` on every commit: every released record survives power
    /// loss, at one disk sync per commit.
    EveryAppend,
    /// Amortized power-loss durability: `fsync` once the unsynced backlog
    /// reaches `max_entries` entries or `max_bytes` bytes, whichever
    /// comes first. The crash window — entries flushed to the OS but not
    /// yet on the platter — is bounded by these two knobs.
    GroupCommit {
        /// Sync after at most this many unsynced entries.
        max_entries: u64,
        /// … or after at most this many unsynced bytes.
        max_bytes: u64,
    },
}

/// Geometry and durability policy for a [`SegmentedFileSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentConfig {
    /// Rotate to a fresh segment once the current one reaches this many
    /// bytes. Commits never split across segments, so a segment can
    /// overshoot the threshold by up to one commit.
    pub segment_bytes: u64,
    /// When committed bytes are fsynced.
    pub fsync: FsyncPolicy,
    /// When `Some(seed)`, the sink seals every rotated-away segment into
    /// a signed [`BlockHeader`] (a `segment-NNNNNNNN.seal` sidecar): a
    /// Merkle root over the segment's lines, the hash-chain bounds, the
    /// checkpoint metric-family exclusion list, all HMAC-signed under
    /// [`SealKey::from_seed`]. `None` keeps PR-5 behaviour (no sidecars).
    pub seal: Option<u64>,
}

impl SegmentConfig {
    /// Default rotation threshold: 8 MiB per segment.
    pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

    /// Replaces the rotation threshold.
    ///
    /// # Panics
    /// Panics if `segment_bytes` is zero.
    pub fn with_segment_bytes(mut self, segment_bytes: u64) -> SegmentConfig {
        assert!(segment_bytes > 0, "segments need a positive byte budget");
        self.segment_bytes = segment_bytes;
        self
    }

    /// Replaces the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> SegmentConfig {
        self.fsync = fsync;
        self
    }

    /// Seals rotated segments under the fleet seed's [`SealKey`] (see
    /// [`SegmentConfig::seal`]).
    pub fn with_seal(mut self, seed: u64) -> SegmentConfig {
        self.seal = Some(seed);
        self
    }
}

impl Default for SegmentConfig {
    fn default() -> SegmentConfig {
        SegmentConfig {
            segment_bytes: Self::DEFAULT_SEGMENT_BYTES,
            fsync: FsyncPolicy::Never,
            seal: None,
        }
    }
}

/// How often a journaled [`crate::FleetService`] writes inline
/// [`JournalEntry::Checkpoint`] entries, bounding recovery cost without
/// an offline [`compact`] pass.
///
/// Checkpoints are written at *safe points* — moments when every
/// journaled `Run` has been posted (after a batch posting, or at the end
/// of a stream pump) — so the checkpoint folds everything before it and
/// recovery can start from the latest one ([`recovery_window`]). On a
/// [`SegmentedFileSink`] each checkpoint also starts a fresh segment and
/// retires the segments it supersedes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CheckpointCadence {
    /// Never checkpoint automatically (compaction stays caller-driven).
    #[default]
    Never,
    /// Checkpoint at the first safe point once at least this many runs
    /// were posted since the previous checkpoint.
    EveryNRuns(u64),
}

impl CheckpointCadence {
    /// Checkpoint every `n` posted runs (at the next safe point).
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn every_n_runs(n: u64) -> CheckpointCadence {
        assert!(n > 0, "a checkpoint cadence needs a positive run count");
        CheckpointCadence::EveryNRuns(n)
    }

    /// Whether a checkpoint is due after `runs_since` posted runs.
    pub(crate) fn due(&self, runs_since: u64) -> bool {
        match self {
            CheckpointCadence::Never => false,
            CheckpointCadence::EveryNRuns(n) => runs_since >= *n,
        }
    }
}

/// Where journal lines go. Implementations must make an appended line
/// durable before returning: the pipeline releases a record to consumers
/// only after its `Run` entry has been accepted.
pub trait JournalSink: Send {
    /// Appends one serialized entry (`line` has no trailing newline; the
    /// sink must write it as its own line).
    fn append_line(&mut self, line: &str) -> Result<(), JournalError>;

    /// Group commit: appends every line (each as its own newline-
    /// terminated line) and makes the whole batch durable together —
    /// ideally one buffered write and one flush/fsync decision. The
    /// default loops [`JournalSink::append_line`], which keeps legacy
    /// sinks correct (and keeps [`FileSink`] honestly flush-per-append
    /// for the benchmark comparison).
    fn append_lines(&mut self, lines: &[&str]) -> Result<(), JournalError> {
        for line in lines {
            self.append_line(line)?;
        }
        Ok(())
    }

    /// Writes `fragment` **without a terminating newline** — the exact
    /// artifact a crash mid-write leaves behind. This exists for the
    /// fault-injection harness ([`crate::faults::FaultInjectingSink`]
    /// manufactures torn tails through it) and must never be called on
    /// the healthy write path: a later [`JournalSink::append_line`] would
    /// merge into the fragment. Default: refuses with
    /// [`JournalError::Io`], which keeps sinks that cannot represent a
    /// torn tail honest.
    fn append_torn(&mut self, fragment: &str) -> Result<(), JournalError> {
        let _ = fragment;
        Err(JournalError::Io(
            "sink does not support torn (newline-less) writes".to_string(),
        ))
    }

    /// Re-anchors the sink's internal evidence chain at `head`. Only
    /// meaningful on a **fresh, empty** sink about to receive the
    /// continuation of an existing chain — [`Journal::fail_over`] calls
    /// this so a sealing [`SegmentedFileSink`]'s first sealed header
    /// carries chain bounds consistent with the first committed line's
    /// `prev` claim. Default: no-op (sinks without internal chain state
    /// have nothing to anchor).
    fn anchor_chain(&mut self, head: ChainDigest) {
        let _ = head;
    }

    /// Called just before a [`JournalEntry::Checkpoint`] line is
    /// appended: segmented sinks rotate so the checkpoint leads a fresh
    /// segment. Default: no-op.
    fn begin_checkpoint(&mut self) -> Result<(), JournalError> {
        Ok(())
    }

    /// Called when the checkpoint line failed to append after
    /// [`JournalSink::begin_checkpoint`] succeeded: undo any bracketing
    /// state (e.g. rotation suppression) without retiring anything.
    /// Default: no-op.
    fn abort_checkpoint(&mut self) {}

    /// Called after the checkpoint line was appended: segmented sinks
    /// make it durable and retire the segments it supersedes. Default:
    /// no-op.
    fn finish_checkpoint(&mut self) -> Result<(), JournalError> {
        Ok(())
    }

    /// Sink-level durability counters. Default: all zero.
    fn sink_stats(&self) -> SinkStats {
        SinkStats::default()
    }

    /// Seals the current in-progress segment (if it has any entries) by
    /// rotating it away, so every committed entry is covered by a signed
    /// [`BlockHeader`]. A no-op for sinks without seals. Default: no-op.
    fn seal_head(&mut self) -> Result<(), JournalError> {
        Ok(())
    }

    /// The signed block headers of every sealed live segment, oldest
    /// first. Default: none.
    fn sealed_headers(&self) -> Result<Vec<BlockHeader>, JournalError> {
        Ok(Vec::new())
    }

    /// Builds [`InclusionProof`]s — Merkle path plus signed block header
    /// — for every sealed entry belonging to `job`, without replaying the
    /// journal into service state. Default: none (unsealed sinks cannot
    /// prove inclusion).
    fn prove(&self, job: JobId) -> Result<Vec<InclusionProof>, JournalError> {
        let _ = job;
        Ok(Vec::new())
    }

    /// Re-verifies every sealed live segment against its block header
    /// (Merkle root, chain bounds, entry count, HMAC seal under `key`)
    /// and returns how many seals were checked. Default: zero.
    fn verify_seals(&self, key: &SealKey) -> Result<u64, JournalError> {
        let _ = key;
        Ok(0)
    }

    /// The full journal text, including entries written before this sink
    /// was opened (file sinks re-read the file; segmented sinks
    /// concatenate their live segments oldest-first).
    fn contents(&self) -> Result<String, JournalError>;
}

/// An in-memory sink: the journal of record for tests and for services
/// that only need replayability within one process.
#[derive(Debug, Default)]
pub struct MemorySink {
    buffer: String,
}

impl MemorySink {
    /// An empty in-memory journal.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }
}

impl JournalSink for MemorySink {
    fn append_line(&mut self, line: &str) -> Result<(), JournalError> {
        self.buffer.push_str(line);
        self.buffer.push('\n');
        Ok(())
    }

    fn append_torn(&mut self, fragment: &str) -> Result<(), JournalError> {
        self.buffer.push_str(fragment);
        Ok(())
    }

    fn contents(&self) -> Result<String, JournalError> {
        Ok(self.buffer.clone())
    }
}

/// A file-backed sink: one JSON line per entry, flushed per append so the
/// write-ahead guarantee holds across a process kill. (Flush pushes the
/// line to the OS; an `fsync` per append — surviving power loss, not just
/// process death — is a deliberate non-goal of the simulation-scale
/// journal and is noted in `docs/ARCHITECTURE.md`.)
#[derive(Debug)]
pub struct FileSink {
    path: PathBuf,
    file: File,
    /// Reused line buffer: the line and its newline still land in one
    /// `write_all` (the torn-tail invariant depends on that), but the
    /// buffer is allocated once, not per append.
    buf: Vec<u8>,
}

/// Opens (creating if absent) a journal file in append mode and repairs a
/// torn tail (see [`repair_torn_tail`]).
fn open_repaired(path: &Path) -> Result<File, JournalError> {
    let file = OpenOptions::new()
        .create(true)
        .read(true)
        .append(true)
        .open(path)?;
    repair_torn_tail(&file)?;
    Ok(file)
}

/// Truncates a non-newline-terminated tail (O_APPEND writes then land
/// at the new end of file). Scans backwards in bounded chunks, so
/// reopening a large journal costs only the torn-tail length, not the
/// file size.
fn repair_torn_tail(file: &File) -> Result<(), JournalError> {
    use std::io::{Seek as _, SeekFrom};
    const CHUNK: u64 = 64 * 1024;
    let len = file.metadata()?.len();
    if len == 0 {
        return Ok(());
    }
    let mut reader = file;
    let mut last = [0u8; 1];
    reader.seek(SeekFrom::Start(len - 1))?;
    reader.read_exact(&mut last)?;
    if last[0] == b'\n' {
        return Ok(());
    }
    let mut end = len;
    let keep = loop {
        if end == 0 {
            break 0; // no newline at all: the whole file is one torn line
        }
        let start = end.saturating_sub(CHUNK);
        let mut buf = vec![0u8; (end - start) as usize];
        reader.seek(SeekFrom::Start(start))?;
        reader.read_exact(&mut buf)?;
        if let Some(at) = buf.iter().rposition(|b| *b == b'\n') {
            break start + at as u64 + 1;
        }
        end = start;
    };
    file.set_len(keep)?;
    Ok(())
}

impl FileSink {
    /// Opens (creating if absent) the journal file at `path` in append
    /// mode, so reopening after a crash continues the same journal.
    ///
    /// A crash mid-append leaves a partial final line with no newline;
    /// appending after it would merge the next entry into the torn
    /// fragment and corrupt the journal mid-file. Opening therefore
    /// *repairs* the file first: a non-newline-terminated tail is
    /// truncated away (the same tail [`parse_journal`] would drop).
    pub fn open(path: impl AsRef<Path>) -> Result<FileSink, JournalError> {
        let path = path.as_ref().to_path_buf();
        let file = open_repaired(&path)?;
        Ok(FileSink {
            path,
            file,
            buf: Vec::new(),
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl JournalSink for FileSink {
    fn append_line(&mut self, line: &str) -> Result<(), JournalError> {
        self.buf.clear();
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
        self.file.write_all(&self.buf)?;
        self.file.flush()?;
        Ok(())
    }

    // `append_lines` deliberately stays the flush-per-append default:
    // `FileSink` is the legacy comparison point for the benchmark, and
    // batching belongs to `SegmentedFileSink`.

    fn append_torn(&mut self, fragment: &str) -> Result<(), JournalError> {
        self.file.write_all(fragment.as_bytes())?;
        self.file.flush()?;
        Ok(())
    }

    fn contents(&self) -> Result<String, JournalError> {
        let mut text = String::new();
        File::open(&self.path)?.read_to_string(&mut text)?;
        Ok(text)
    }
}

/// The production file sink: `BufWriter`-backed segment files
/// (`segment-00000001.jsonl`, `segment-00000002.jsonl`, …) in one
/// directory, rotated at [`SegmentConfig::segment_bytes`], fsynced per
/// [`FsyncPolicy`], and retired (deleted) once a
/// [`JournalEntry::Checkpoint`] supersedes them.
///
/// Invariants the recovery path relies on:
///
/// * every commit ends with a flush, so a *process* crash can only tear
///   the final, unterminated line of the **last** segment — earlier
///   segments are sealed and must parse cleanly ([`Self::contents`]
///   concatenates the live segments, so a torn tail anywhere else
///   surfaces as [`JournalError::Corrupt`]);
/// * a checkpoint always leads its segment ([`Self::begin_checkpoint`]
///   rotates first), and retirement deletes only segments *before* the
///   checkpoint's — after the checkpoint batch is fsynced — so the live
///   directory always replays from a leading checkpoint.
#[derive(Debug)]
pub struct SegmentedFileSink {
    dir: PathBuf,
    config: SegmentConfig,
    writer: BufWriter<File>,
    /// Index of the segment currently appended to (== `live.last()`).
    current_index: u64,
    /// Bytes committed to the current segment.
    current_len: u64,
    /// Live segment indices, ascending.
    live: Vec<u64>,
    /// Inside a `begin_checkpoint`…`finish_checkpoint` bracket: rotation
    /// is suppressed so the checkpoint line can never overflow into (or
    /// past) a segment retirement is about to use as its horizon.
    in_checkpoint: bool,
    unsynced_entries: u64,
    unsynced_bytes: u64,
    stats: SinkStats,
    /// The fleet's sealing key, when [`SegmentConfig::seal`] is set.
    seal_key: Option<SealKey>,
    /// Chain head over every committed line (maintained only when
    /// sealing).
    chain: ChainDigest,
    /// Chain head as of the current segment's first line — the sealed
    /// header's `chain_prev` bound.
    segment_chain_prev: ChainDigest,
    /// Merkle leaf digests of the current segment's lines.
    leaves: Vec<ChainDigest>,
}

impl SegmentedFileSink {
    const PREFIX: &'static str = "segment-";
    const SUFFIX: &'static str = ".jsonl";
    const SEAL_SUFFIX: &'static str = ".seal";

    /// The file name of segment `index`.
    fn segment_name(index: u64) -> String {
        format!("{}{index:08}{}", Self::PREFIX, Self::SUFFIX)
    }

    /// The file name of segment `index`'s sealed block header.
    fn seal_name(index: u64) -> String {
        format!("{}{index:08}{}", Self::PREFIX, Self::SEAL_SUFFIX)
    }

    /// Opens (creating if absent) a segment directory at `dir`. Existing
    /// segments are kept — reopening after a crash continues the same
    /// journal — and the *last* segment's torn tail, if any, is repaired
    /// exactly like [`FileSink::open`] does. A torn tail in an earlier
    /// segment is never repaired: sealed segments cannot legally be torn,
    /// so that damage must surface as corruption, not be papered over.
    pub fn open(
        dir: impl AsRef<Path>,
        config: SegmentConfig,
    ) -> Result<SegmentedFileSink, JournalError> {
        assert!(
            config.segment_bytes > 0,
            "segments need a positive byte budget"
        );
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut live: Vec<u64> = std::fs::read_dir(&dir)?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name();
                let name = name.to_str()?;
                let index = name
                    .strip_prefix(Self::PREFIX)?
                    .strip_suffix(Self::SUFFIX)?;
                index.parse::<u64>().ok()
            })
            .collect();
        live.sort_unstable();
        if live.is_empty() {
            live.push(1);
        }
        let current_index = *live.last().expect("at least one segment");
        let file = open_repaired(&dir.join(Self::segment_name(current_index)))?;
        let current_len = file.metadata()?.len();
        let mut sink = SegmentedFileSink {
            dir,
            config,
            writer: BufWriter::new(file),
            current_index,
            current_len,
            live,
            in_checkpoint: false,
            unsynced_entries: 0,
            unsynced_bytes: 0,
            stats: SinkStats::default(),
            seal_key: config.seal.map(SealKey::from_seed),
            chain: evidence::genesis(),
            segment_chain_prev: evidence::genesis(),
            leaves: Vec::new(),
        };
        if sink.seal_key.is_some() {
            sink.rescan_chain()?;
        }
        Ok(sink)
    }

    /// Rebuilds the chain head, the current segment's leaf set and its
    /// leading chain bound from the live segments — reopening a sealed
    /// journal continues its chain, it never restarts one. The scan is
    /// *tolerant* (the first line's claimed `prev` is adopted as the
    /// anchor, later claims are not checked): detection belongs to
    /// [`parse_journal`] and [`JournalSink::verify_seals`], not to open,
    /// so a tampered journal can still be opened and inspected.
    fn rescan_chain(&mut self) -> Result<(), JournalError> {
        let mut chain = evidence::genesis();
        let mut anchored = false;
        let mut segment_chain_prev = chain;
        let mut leaves = Vec::new();
        let live = self.live.clone();
        for index in live {
            segment_chain_prev = chain;
            leaves.clear();
            let text = std::fs::read_to_string(self.dir.join(Self::segment_name(index)))?;
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                if !anchored {
                    anchored = true;
                    if let Ok(chained) = serde_json::from_str::<ChainedLine>(line) {
                        if let Some(claimed) = evidence::decode_hex(&chained.prev) {
                            chain = claimed;
                            segment_chain_prev = chain;
                        }
                    }
                }
                let leaf = evidence::leaf_digest(line.as_bytes());
                chain = evidence::link_leaf(&chain, &leaf);
                leaves.push(leaf);
            }
        }
        self.chain = chain;
        self.segment_chain_prev = segment_chain_prev;
        self.leaves = leaves;
        Ok(())
    }

    /// Reads segment `index`'s sealed block header; `None` if the segment
    /// was never sealed (the in-progress head, or a pre-sealing journal).
    fn read_header(&self, index: u64) -> Result<Option<BlockHeader>, JournalError> {
        let path = self.dir.join(Self::seal_name(index));
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let header: BlockHeader =
            serde_json::from_str(&text).map_err(|e| JournalError::SealViolation {
                segment: index,
                message: format!("unparseable block header: {e}"),
            })?;
        Ok(Some(header))
    }

    /// Writes the signed block header for the (just-flushed) current
    /// segment when sealing is enabled, and re-bases the per-segment
    /// chain state for the successor segment.
    fn seal_current(&mut self) -> Result<(), JournalError> {
        let Some(key) = &self.seal_key else {
            return Ok(());
        };
        let mut header = BlockHeader {
            version: BlockHeader::VERSION,
            segment: self.current_index,
            entries: self.leaves.len() as u64,
            chain_prev: evidence::encode_hex(&self.segment_chain_prev),
            chain_head: evidence::encode_hex(&self.chain),
            merkle_root: evidence::encode_hex(&evidence::merkle_root(&self.leaves)),
            excluded_families: excluded_metric_families(),
            seal: String::new(),
        };
        header.sign(key);
        let text = serde_json::to_string(&header)
            .map_err(|e| JournalError::Io(format!("serialize block header: {e}")))?;
        let mut file = File::create(self.dir.join(Self::seal_name(self.current_index)))?;
        file.write_all(text.as_bytes())?;
        if !matches!(self.config.fsync, FsyncPolicy::Never) {
            file.sync_data()?;
        }
        self.stats.seals += 1;
        self.segment_chain_prev = self.chain;
        self.leaves.clear();
        Ok(())
    }

    /// The segment directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Paths of the live segments, oldest first (the last one is being
    /// appended to).
    pub fn segments(&self) -> Vec<PathBuf> {
        self.live
            .iter()
            .map(|index| self.dir.join(Self::segment_name(*index)))
            .collect()
    }

    /// Syncs the current segment to the platter and resets the unsynced
    /// backlog. Uses `fdatasync` (`sync_data`): file *data* plus the
    /// metadata needed to read it back (size) — the standard WAL sync,
    /// materially cheaper than `fsync`'s full-metadata flush.
    fn fsync(&mut self) -> Result<(), JournalError> {
        self.writer.get_ref().sync_data()?;
        self.stats.fsyncs += 1;
        self.unsynced_entries = 0;
        self.unsynced_bytes = 0;
        Ok(())
    }

    /// Syncs the segment *directory*: a freshly created segment's data
    /// can be fdatasync'd and still unreachable after power loss if the
    /// directory entry never hit the platter, and a retirement's
    /// `remove_file`s are likewise directory mutations. Called after
    /// creating a segment (under a syncing policy) and after retirement.
    fn sync_dir(&mut self) -> Result<(), JournalError> {
        File::open(&self.dir)?.sync_all()?;
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// Writes `lines` into the current segment, flushes to the OS (the
    /// commit point), then applies the fsync policy and rotates if the
    /// segment is over budget.
    fn commit(&mut self, lines: &[&str]) -> Result<(), JournalError> {
        let mut bytes = 0u64;
        for line in lines {
            self.writer.write_all(line.as_bytes())?;
            self.writer.write_all(b"\n")?;
            bytes += line.len() as u64 + 1;
            if self.seal_key.is_some() {
                // One hash per line: the leaf feeds both the Merkle tree
                // and the chain fold.
                let leaf = evidence::leaf_digest(line.as_bytes());
                self.chain = evidence::link_leaf(&self.chain, &leaf);
                self.leaves.push(leaf);
            }
        }
        // Flushed before the caller releases anything: a process crash
        // after return never loses a committed entry, and a crash during
        // the flush leaves at most complete lines plus one torn,
        // unterminated tail (writes land sequentially).
        self.writer.flush()?;
        self.current_len += bytes;
        self.unsynced_entries += lines.len() as u64;
        self.unsynced_bytes += bytes;
        match self.config.fsync {
            FsyncPolicy::Never => {}
            FsyncPolicy::EveryAppend => self.fsync()?,
            FsyncPolicy::GroupCommit {
                max_entries,
                max_bytes,
            } => {
                if self.unsynced_entries >= max_entries || self.unsynced_bytes >= max_bytes {
                    self.fsync()?;
                }
            }
        }
        // A checkpoint line larger than the segment budget must not
        // rotate mid-bracket: retirement uses its segment as the horizon.
        // The next ordinary commit rotates instead.
        if self.current_len >= self.config.segment_bytes && !self.in_checkpoint {
            self.rotate()?;
        }
        Ok(())
    }

    /// Seals the current segment and starts the next one.
    fn rotate(&mut self) -> Result<(), JournalError> {
        self.writer.flush()?;
        // Seal the finished segment to the platter unless the policy
        // never syncs: a sealed segment is the one place a torn tail is
        // *illegal*, so don't leave it hostage to the page cache.
        if !matches!(self.config.fsync, FsyncPolicy::Never) && self.unsynced_bytes > 0 {
            self.fsync()?;
        }
        // The finished segment is complete and flushed: sign its block
        // header before anything can be appended elsewhere.
        self.seal_current()?;
        self.current_index += 1;
        let file = open_repaired(&self.dir.join(Self::segment_name(self.current_index)))?;
        self.writer = BufWriter::new(file);
        self.current_len = 0;
        self.live.push(self.current_index);
        self.stats.rotations += 1;
        // Make the new segment's directory entry durable too, or records
        // synced into it could vanish with the file on power loss.
        if !matches!(self.config.fsync, FsyncPolicy::Never) {
            self.sync_dir()?;
        }
        Ok(())
    }
}

impl JournalSink for SegmentedFileSink {
    fn append_line(&mut self, line: &str) -> Result<(), JournalError> {
        self.commit(&[line])
    }

    fn append_lines(&mut self, lines: &[&str]) -> Result<(), JournalError> {
        if lines.is_empty() {
            return Ok(());
        }
        self.commit(lines)
    }

    fn append_torn(&mut self, fragment: &str) -> Result<(), JournalError> {
        // A torn fragment is *not* committed evidence: it counts toward
        // the segment length (those bytes are on disk) but never joins
        // the chain fold or the Merkle leaves — exactly as a real crash
        // artifact would be dropped by the parse and repaired on reopen.
        self.writer.write_all(fragment.as_bytes())?;
        self.writer.flush()?;
        self.current_len += fragment.len() as u64;
        Ok(())
    }

    fn anchor_chain(&mut self, head: ChainDigest) {
        // Only sound on an empty sink (nothing committed yet): the first
        // committed line will claim `prev = head`, so the sealed headers'
        // chain bounds and `verify_seals`'s anchor adoption agree.
        self.chain = head;
        self.segment_chain_prev = head;
    }

    fn begin_checkpoint(&mut self) -> Result<(), JournalError> {
        // A checkpoint must lead its segment so retirement can use the
        // segment boundary as the recovery horizon. A fresh (empty)
        // segment already qualifies.
        if self.current_len > 0 {
            self.rotate()?;
        }
        self.in_checkpoint = true;
        Ok(())
    }

    fn abort_checkpoint(&mut self) {
        // The checkpoint line never committed: lift the rotation
        // suppression so ordinary appends keep rotating, and leave the
        // live segments untouched (nothing was superseded).
        self.in_checkpoint = false;
    }

    fn finish_checkpoint(&mut self) -> Result<(), JournalError> {
        self.in_checkpoint = false;
        // Retirement is destructive, so it is durable *whatever* the
        // policy: the checkpoint that supersedes the old segments (and
        // its directory entry) goes to the platter before any history is
        // deleted. `Never` trades away tail durability, but actively
        // destroying previously-durable segments against a page-cache-
        // only checkpoint would be strictly worse than not retiring.
        if self.unsynced_bytes > 0 {
            self.fsync()?;
        }
        self.sync_dir()?;
        // Everything before the checkpoint's (current) segment is folded
        // into it and can go. The unlinks are left to the OS's normal
        // writeback: if power loss resurrects a retired segment, it sits
        // *before* the (durable) checkpoint, so recovery's
        // last-checkpoint seek skips it and the next retirement deletes
        // it again.
        let retire: Vec<u64> = self.live.drain(..self.live.len() - 1).collect();
        for index in retire {
            std::fs::remove_file(self.dir.join(Self::segment_name(index)))?;
            // A retired segment's sealed header goes with it (absent for
            // segments written before sealing was enabled).
            match std::fs::remove_file(self.dir.join(Self::seal_name(index))) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
            self.stats.segments_retired += 1;
        }
        Ok(())
    }

    fn seal_head(&mut self) -> Result<(), JournalError> {
        // Rotating seals the closed segment; an empty head has nothing to
        // seal, and a checkpoint bracket must not rotate mid-flight.
        if self.seal_key.is_some() && self.current_len > 0 && !self.in_checkpoint {
            self.rotate()?;
        }
        Ok(())
    }

    fn sealed_headers(&self) -> Result<Vec<BlockHeader>, JournalError> {
        let mut headers = Vec::new();
        for &index in &self.live {
            if let Some(header) = self.read_header(index)? {
                headers.push(header);
            }
        }
        Ok(headers)
    }

    fn prove(&self, job: JobId) -> Result<Vec<InclusionProof>, JournalError> {
        let mut proofs = Vec::new();
        for &index in &self.live {
            let Some(header) = self.read_header(index)? else {
                continue; // the in-progress head is not sealed yet
            };
            let text = std::fs::read_to_string(self.dir.join(Self::segment_name(index)))?;
            let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
            let leaves: Vec<ChainDigest> = lines
                .iter()
                .map(|l| evidence::leaf_digest(l.as_bytes()))
                .collect();
            for (at, line) in lines.iter().enumerate() {
                let chained: ChainedLine =
                    serde_json::from_str(line).map_err(|e| JournalError::SealViolation {
                        segment: index,
                        message: format!("sealed segment holds an unparseable line: {e}"),
                    })?;
                if chained.entry.job() == Some(job) {
                    proofs.push(InclusionProof {
                        line: (*line).to_string(),
                        index: at as u64,
                        path: evidence::merkle_path(&leaves, at),
                        header: header.clone(),
                    });
                }
            }
        }
        Ok(proofs)
    }

    fn verify_seals(&self, key: &SealKey) -> Result<u64, JournalError> {
        let mut verified = 0u64;
        let mut chain = evidence::genesis();
        let mut anchored = false;
        let last = *self.live.last().expect("at least one segment");
        for &index in &self.live {
            let header = self.read_header(index)?;
            let text = std::fs::read_to_string(self.dir.join(Self::segment_name(index)))?;
            let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
            let Some(header) = header else {
                if index != last {
                    return Err(JournalError::SealViolation {
                        segment: index,
                        message: "non-head segment has no sealed block header".to_string(),
                    });
                }
                // The unsealed head is vouched for by the chain walk only.
                continue;
            };
            if !anchored {
                anchored = true;
                if let Some(first) = lines.first() {
                    if let Ok(chained) = serde_json::from_str::<ChainedLine>(first) {
                        if let Some(claimed) = evidence::decode_hex(&chained.prev) {
                            chain = claimed;
                        }
                    }
                }
            }
            let segment_prev = chain;
            let leaves: Vec<ChainDigest> = lines
                .iter()
                .map(|l| evidence::leaf_digest(l.as_bytes()))
                .collect();
            for leaf in &leaves {
                chain = evidence::link_leaf(&chain, leaf);
            }
            let violation = |message: String| JournalError::SealViolation {
                segment: index,
                message,
            };
            if header.segment != index {
                return Err(violation(format!(
                    "header names segment {}, found beside segment {index}",
                    header.segment
                )));
            }
            if header.entries != lines.len() as u64 {
                return Err(violation(format!(
                    "header seals {} entries, segment holds {}",
                    header.entries,
                    lines.len()
                )));
            }
            if header.chain_prev != evidence::encode_hex(&segment_prev) {
                return Err(violation(
                    "segment's leading chain bound disagrees with its sealed header".to_string(),
                ));
            }
            if header.chain_head != evidence::encode_hex(&chain) {
                return Err(violation(
                    "segment's trailing chain bound disagrees with its sealed header".to_string(),
                ));
            }
            if header.merkle_root != evidence::encode_hex(&evidence::merkle_root(&leaves)) {
                return Err(violation(
                    "segment's merkle root disagrees with its sealed header".to_string(),
                ));
            }
            if !header.verify_seal(key) {
                return Err(violation(
                    "block header seal does not verify under this fleet's key".to_string(),
                ));
            }
            verified += 1;
        }
        Ok(verified)
    }

    fn sink_stats(&self) -> SinkStats {
        self.stats
    }

    fn contents(&self) -> Result<String, JournalError> {
        let mut text = String::new();
        for index in &self.live {
            File::open(self.dir.join(Self::segment_name(*index)))?.read_to_string(&mut text)?;
        }
        Ok(text)
    }
}

struct JournalInner {
    sink: Box<dyn JournalSink>,
    stats: JournalStats,
    /// The evidence chain head: the chain link folded over every line
    /// committed so far (recomputed from the sink's existing contents on
    /// open, advanced only after a commit succeeds).
    link: ChainDigest,
    /// Reused serialization buffer: every append path serializes into
    /// this and hands the sink string slices, so the steady state
    /// allocates nothing per entry.
    scratch: String,
    /// End offset of each serialized line in `scratch` (reused).
    line_ends: Vec<usize>,
}

/// Serializes `value` framed as one chained journal line,
/// `{"prev":"<hex>","entry":{"<variant>":<value>}}` — byte-identical to
/// serializing the corresponding [`JournalEntry`] inside the same
/// envelope, without building one.
fn frame_variant<T: Serialize>(
    out: &mut String,
    prev: &ChainDigest,
    variant: &str,
    value: &T,
) -> Result<(), JournalError> {
    out.push_str("{\"prev\":\"");
    out.push_str(&evidence::encode_hex(prev));
    out.push_str("\",\"entry\":{\"");
    out.push_str(variant);
    out.push_str("\":");
    serde_json::Serializer::new(out)
        .serialize(value)
        .map_err(|e| JournalError::Io(format!("serialize journal entry: {e}")))?;
    out.push_str("}}");
    Ok(())
}

/// Serializes a whole [`JournalEntry`] inside the chained envelope.
fn frame_entry(
    out: &mut String,
    prev: &ChainDigest,
    entry: &JournalEntry,
) -> Result<(), JournalError> {
    out.push_str("{\"prev\":\"");
    out.push_str(&evidence::encode_hex(prev));
    out.push_str("\",\"entry\":");
    serde_json::Serializer::new(out)
        .serialize(entry)
        .map_err(|e| JournalError::Io(format!("serialize journal entry: {e}")))?;
    out.push('}');
    Ok(())
}

/// Recomputes the chain head over existing journal text. The fold is
/// *tolerant*: the first line's claimed `prev` is adopted as the anchor
/// (a retired journal legitimately starts mid-chain at its leading
/// checkpoint) and later claims are not checked — detection belongs to
/// [`parse_journal`], not to open, so a tampered journal can still be
/// opened and inspected. An unterminated final line is ignored, exactly
/// as reopen repairs it away.
fn chain_head_of(text: &str) -> ChainDigest {
    let mut link = evidence::genesis();
    let mut anchored = false;
    let mut offset = 0usize;
    while offset < text.len() {
        let rest = &text[offset..];
        let (line, consumed, terminated) = match rest.find('\n') {
            Some(at) => (&rest[..at], at + 1, true),
            None => (rest, rest.len(), false),
        };
        offset += consumed;
        if !terminated || line.trim().is_empty() {
            continue;
        }
        if !anchored {
            anchored = true;
            if let Ok(chained) = serde_json::from_str::<ChainedLine>(line) {
                if let Some(claimed) = evidence::decode_hex(&chained.prev) {
                    link = claimed;
                }
            }
        }
        link = evidence::chain_link(&link, line.as_bytes());
    }
    link
}

/// Commits the lines staged in `scratch`/`line_ends` as ONE sink-level
/// group commit and rolls the handle counters forward.
fn commit_scratch(inner: &mut JournalInner) -> Result<(), JournalError> {
    let mut lines = Vec::with_capacity(inner.line_ends.len());
    let mut start = 0usize;
    for &end in &inner.line_ends {
        lines.push(&inner.scratch[start..end]);
        start = end;
    }
    inner.sink.append_lines(&lines)?;
    inner.stats.appends += lines.len() as u64;
    inner.stats.bytes += inner.scratch.len() as u64 + lines.len() as u64;
    inner.stats.group_commits += 1;
    Ok(())
}

/// A cloneable handle to one append-only journal. The ingest pipeline and
/// the service share a handle, so the append/byte counters cover the whole
/// write-ahead stream; appends are serialized through an internal lock.
///
/// See the [module docs](self) for the entry types and the recovery
/// contract.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<Mutex<JournalInner>>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("Journal")
            .field("appends", &stats.appends)
            .field("bytes", &stats.bytes)
            .finish()
    }
}

impl Journal {
    /// A journal over a custom sink. The sink's existing contents are
    /// read once to recompute the evidence chain head, so appends
    /// continue the chain across reopens instead of restarting it.
    ///
    /// # Errors
    /// [`JournalError::Io`] if the sink's contents cannot be read.
    pub fn with_sink(sink: Box<dyn JournalSink>) -> Result<Journal, JournalError> {
        let link = chain_head_of(&sink.contents()?);
        Ok(Journal {
            inner: Arc::new(Mutex::new(JournalInner {
                sink,
                stats: JournalStats::default(),
                link,
                scratch: String::new(),
                line_ends: Vec::new(),
            })),
        })
    }

    /// An in-memory journal.
    pub fn in_memory() -> Journal {
        Journal::with_sink(Box::new(MemorySink::new()))
            .expect("an empty in-memory journal cannot fail to open")
    }

    /// A file-backed journal at `path` (created if absent, appended to if
    /// present — reopening after a crash continues the same journal).
    /// This is the *legacy* flush-per-append sink; production services
    /// should prefer [`Journal::segmented`].
    ///
    /// # Errors
    /// [`JournalError::Io`] if the file cannot be opened.
    pub fn file(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        Journal::with_sink(Box::new(FileSink::open(path)?))
    }

    /// A journal over a [`SegmentedFileSink`] at directory `dir` (created
    /// if absent; existing segments are continued — reopening after a
    /// crash repairs the last segment's torn tail first).
    ///
    /// # Errors
    /// [`JournalError::Io`] if the directory or its segments cannot be
    /// opened.
    pub fn segmented(
        dir: impl AsRef<Path>,
        config: SegmentConfig,
    ) -> Result<Journal, JournalError> {
        Journal::with_sink(Box::new(SegmentedFileSink::open(dir, config)?))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JournalInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Serializes and appends one entry as a JSON line, durable before
    /// return.
    ///
    /// # Errors
    /// [`JournalError::Io`] if the sink rejects the line.
    pub fn append(&self, entry: &JournalEntry) -> Result<(), JournalError> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.scratch.clear();
        let prev = inner.link;
        frame_entry(&mut inner.scratch, &prev, entry)?;
        inner.sink.append_line(&inner.scratch)?;
        inner.link = evidence::chain_link(&prev, inner.scratch.as_bytes());
        inner.stats.appends += 1;
        inner.stats.bytes += inner.scratch.len() as u64 + 1;
        Ok(())
    }

    /// Appends a [`JournalEntry::Run`] serialized straight from a borrowed
    /// record — byte-identical to `append(&JournalEntry::run(...))`
    /// without cloning the (large) record into the entry first.
    ///
    /// # Errors
    /// [`JournalError::Io`] if the sink rejects the line.
    pub fn append_run(&self, record: &RunRecord) -> Result<(), JournalError> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.scratch.clear();
        let prev = inner.link;
        frame_variant(&mut inner.scratch, &prev, "Run", record)?;
        inner.sink.append_line(&inner.scratch)?;
        inner.link = evidence::chain_link(&prev, inner.scratch.as_bytes());
        inner.stats.appends += 1;
        inner.stats.bytes += inner.scratch.len() as u64 + 1;
        Ok(())
    }

    /// Group commit of a whole batch of entries: serialized back to back
    /// into the journal's reused buffer and handed to the sink as one
    /// [`JournalSink::append_lines`] call.
    ///
    /// # Errors
    /// [`JournalError::Io`] if serialization or the sink fails.
    pub fn append_batch(&self, entries: &[JournalEntry]) -> Result<(), JournalError> {
        if entries.is_empty() {
            return Ok(());
        }
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.scratch.clear();
        inner.line_ends.clear();
        let mut link = inner.link;
        for entry in entries {
            let start = inner.scratch.len();
            frame_entry(&mut inner.scratch, &link, entry)?;
            link = evidence::chain_link(&link, &inner.scratch.as_bytes()[start..]);
            inner.line_ends.push(inner.scratch.len());
        }
        commit_scratch(inner)?;
        inner.link = link;
        Ok(())
    }

    /// Group commit of [`JournalEntry::Run`] entries serialized straight
    /// from borrowed records — the ingest pipeline's release path commits
    /// its whole ready prefix through this, one sink write for the batch
    /// and no per-record allocation.
    ///
    /// # Errors
    /// [`JournalError::Io`] if serialization or the sink fails.
    pub fn append_runs(&self, records: &[RunRecord]) -> Result<(), JournalError> {
        if records.is_empty() {
            return Ok(());
        }
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.scratch.clear();
        inner.line_ends.clear();
        let mut link = inner.link;
        for record in records {
            let start = inner.scratch.len();
            frame_variant(&mut inner.scratch, &link, "Run", record)?;
            link = evidence::chain_link(&link, &inner.scratch.as_bytes()[start..]);
            inner.line_ends.push(inner.scratch.len());
        }
        commit_scratch(inner)?;
        inner.link = link;
        Ok(())
    }

    /// Appends a [`JournalEntry::Accepted`] serialized straight from a
    /// borrowed spec — the ingest pipeline's submission-side write-ahead
    /// point: the spec is durable before the job becomes visible to any
    /// worker.
    ///
    /// # Errors
    /// [`JournalError::Io`] if serialization or the sink fails.
    pub fn append_accepted(&self, spec: &JobSpec) -> Result<(), JournalError> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.scratch.clear();
        let prev = inner.link;
        frame_variant(&mut inner.scratch, &prev, "Accepted", spec)?;
        inner.sink.append_line(&inner.scratch)?;
        inner.link = evidence::chain_link(&prev, inner.scratch.as_bytes());
        inner.stats.appends += 1;
        inner.stats.bytes += inner.scratch.len() as u64 + 1;
        Ok(())
    }

    /// Group commit of [`JournalEntry::Accepted`] entries serialized
    /// straight from borrowed specs — failover re-journals the pending
    /// accepted set into the fresh sink through this, one sink write for
    /// the batch.
    ///
    /// # Errors
    /// [`JournalError::Io`] if serialization or the sink fails.
    pub fn append_accepted_batch(&self, specs: &[JobSpec]) -> Result<(), JournalError> {
        if specs.is_empty() {
            return Ok(());
        }
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.scratch.clear();
        inner.line_ends.clear();
        let mut link = inner.link;
        for spec in specs {
            let start = inner.scratch.len();
            frame_variant(&mut inner.scratch, &link, "Accepted", spec)?;
            link = evidence::chain_link(&link, &inner.scratch.as_bytes()[start..]);
            inner.line_ends.push(inner.scratch.len());
        }
        commit_scratch(inner)?;
        inner.link = link;
        Ok(())
    }

    /// Appends a [`JournalEntry::Poisoned`] serialized straight from a
    /// borrowed notice — the release path journals a poison job's
    /// verdict at exactly the chain position its `Run` entry would have
    /// taken, so the release order stays reconstructible from the
    /// journal alone.
    ///
    /// # Errors
    /// [`JournalError::Io`] if serialization or the sink fails.
    pub fn append_poisoned(&self, notice: &PoisonNotice) -> Result<(), JournalError> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.scratch.clear();
        let prev = inner.link;
        frame_variant(&mut inner.scratch, &prev, "Poisoned", notice)?;
        inner.sink.append_line(&inner.scratch)?;
        inner.link = evidence::chain_link(&prev, inner.scratch.as_bytes());
        inner.stats.appends += 1;
        inner.stats.bytes += inner.scratch.len() as u64 + 1;
        Ok(())
    }

    /// Group commit of one posting's Run/Invoice/Verdict triple — the
    /// batch path journals each posted record through this, one sink
    /// write for the three lines.
    ///
    /// # Errors
    /// [`JournalError::Io`] if serialization or the sink fails.
    pub fn append_posting(
        &self,
        record: &RunRecord,
        invoice: &InvoicePosting,
        verdict: &AuditVerdict,
    ) -> Result<(), JournalError> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.scratch.clear();
        inner.line_ends.clear();
        let mut link = inner.link;
        let mut start = 0usize;
        frame_variant(&mut inner.scratch, &link, "Run", record)?;
        link = evidence::chain_link(&link, &inner.scratch.as_bytes()[start..]);
        inner.line_ends.push(inner.scratch.len());
        start = inner.scratch.len();
        frame_variant(&mut inner.scratch, &link, "Invoice", invoice)?;
        link = evidence::chain_link(&link, &inner.scratch.as_bytes()[start..]);
        inner.line_ends.push(inner.scratch.len());
        start = inner.scratch.len();
        frame_variant(&mut inner.scratch, &link, "Verdict", verdict)?;
        link = evidence::chain_link(&link, &inner.scratch.as_bytes()[start..]);
        inner.line_ends.push(inner.scratch.len());
        commit_scratch(inner)?;
        inner.link = link;
        Ok(())
    }

    /// Group commit of Invoice/Verdict receipt pairs — a stream pump
    /// journals the receipts of everything it posted through this.
    ///
    /// # Errors
    /// [`JournalError::Io`] if serialization or the sink fails.
    pub fn append_receipts(
        &self,
        receipts: &[(InvoicePosting, AuditVerdict)],
    ) -> Result<(), JournalError> {
        if receipts.is_empty() {
            return Ok(());
        }
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.scratch.clear();
        inner.line_ends.clear();
        let mut link = inner.link;
        for (invoice, verdict) in receipts {
            let mut start = inner.scratch.len();
            frame_variant(&mut inner.scratch, &link, "Invoice", invoice)?;
            link = evidence::chain_link(&link, &inner.scratch.as_bytes()[start..]);
            inner.line_ends.push(inner.scratch.len());
            start = inner.scratch.len();
            frame_variant(&mut inner.scratch, &link, "Verdict", verdict)?;
            link = evidence::chain_link(&link, &inner.scratch.as_bytes()[start..]);
            inner.line_ends.push(inner.scratch.len());
        }
        commit_scratch(inner)?;
        inner.link = link;
        Ok(())
    }

    /// Appends a [`JournalEntry::Checkpoint`], bracketed by the sink's
    /// checkpoint hooks: a segmented sink rotates first (the checkpoint
    /// leads a fresh segment) and retires the superseded segments after.
    ///
    /// # Errors
    /// [`JournalError::Io`] if serialization or the sink fails.
    pub fn append_checkpoint(&self, checkpoint: &Checkpoint) -> Result<(), JournalError> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.sink.begin_checkpoint()?;
        inner.scratch.clear();
        let prev = inner.link;
        let appended = frame_variant(&mut inner.scratch, &prev, "Checkpoint", checkpoint)
            .and_then(|()| inner.sink.append_line(&inner.scratch));
        if let Err(e) = appended {
            // Leave the bracket cleanly: nothing was superseded, and the
            // sink must not stay in checkpoint mode (that would suppress
            // rotation forever).
            inner.sink.abort_checkpoint();
            return Err(e);
        }
        inner.link = evidence::chain_link(&prev, inner.scratch.as_bytes());
        inner.stats.appends += 1;
        inner.stats.bytes += inner.scratch.len() as u64 + 1;
        inner.sink.finish_checkpoint()?;
        Ok(())
    }

    /// Fails the journal over to a **fresh** sink (e.g. a new segment
    /// directory on a healthy disk) after the current sink started
    /// rejecting writes. The swap propagates to every clone of this
    /// handle — the service and the ingest pipeline share one journal —
    /// and the evidence chain head carries over unchanged: the link only
    /// ever advances after a commit *succeeds*, so the replacement sink's
    /// first line continues the chain exactly where the dead sink's last
    /// committed line left it. The sink is told the inherited head
    /// ([`JournalSink::anchor_chain`]) so a sealing [`SegmentedFileSink`]
    /// signs headers with consistent chain bounds.
    ///
    /// The replacement must be empty: failover *continues* a journal, it
    /// never splices two. (For the new directory to be recoverable on its
    /// own, write a leading [`JournalEntry::Checkpoint`] right after the
    /// swap — [`crate::FleetStream::resume_with_sink`] does.)
    pub fn fail_over(&self, sink: Box<dyn JournalSink>) {
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.sink = sink;
        let link = inner.link;
        inner.sink.anchor_chain(link);
    }

    // The journal deliberately keeps exactly ONE `*_or_die` wrapper —
    // for the batch service's posting path, where the record has already
    // been posted to the in-memory ledger and the batch API offers no
    // error channel: a metering service whose billed state can no longer
    // be made durable must not keep billing. Every other write path is
    // fallible: the *streaming* release path — where the write-ahead
    // contract lets us hold the records back — uses `append_runs` under a
    // retry policy and degrades to quarantine (see `crate::ingest`), and
    // receipt/checkpoint commits degrade by counting a failure (receipts
    // are re-derived on recovery; a skipped checkpoint is retried at the
    // next safe point).

    /// [`Journal::append_posting`] with failure fatal.
    ///
    /// Used by the batch posting path ([`crate::FleetService::process`]),
    /// where the posting has already mutated the in-memory ledger before
    /// the journal write and the batch API has no error channel to
    /// withhold it through — persisting a half-posted state would be
    /// worse than stopping. The streaming path never calls this; it
    /// retries and quarantines instead.
    ///
    /// # Panics
    /// Panics if the sink rejects the batch.
    pub fn append_posting_or_die(
        &self,
        record: &RunRecord,
        invoice: &InvoicePosting,
        verdict: &AuditVerdict,
    ) {
        if let Err(e) = self.append_posting(record, invoice, verdict) {
            panic!("journal group commit failed (posting triple): {e}");
        }
    }

    /// Append/byte/commit counters for this handle, merged with the
    /// sink's rotation/fsync/retirement counters.
    pub fn stats(&self) -> JournalStats {
        let inner = self.lock();
        let sink = inner.sink.sink_stats();
        JournalStats {
            rotations: sink.rotations,
            fsyncs: sink.fsyncs,
            segments_retired: sink.segments_retired,
            seals: sink.seals,
            ..inner.stats
        }
    }

    /// Reads the journal back and parses it, dropping a truncated tail
    /// and walking the evidence chain.
    ///
    /// # Errors
    /// [`JournalError::Io`] if the sink cannot be read;
    /// [`JournalError::Corrupt`] if an entry *before* the tail fails to
    /// parse; [`JournalError::ChainViolation`] if an entry is off the
    /// hash chain (see [`parse_journal`]).
    pub fn entries(&self) -> Result<(Vec<JournalEntry>, TailStatus), JournalError> {
        let text = self.lock().sink.contents()?;
        parse_journal(&text)
    }

    /// The journal's canonical chained bytes, exactly as the sink holds
    /// them — the text [`parse_journal`] walks and the evidence chain is
    /// computed over. External verifiers (and tamper tests) operate on
    /// this representation.
    ///
    /// # Errors
    /// [`JournalError::Io`] if the sink cannot be read.
    pub fn text(&self) -> Result<String, JournalError> {
        self.lock().sink.contents()
    }

    /// Seals the in-progress segment (if it holds any entries) by
    /// rotating it away, so every committed entry is covered by a signed
    /// block header — the step [`Journal::prove`] needs before it can
    /// cover the newest entries. A no-op on sinks without sealing.
    ///
    /// # Errors
    /// [`JournalError::Io`] if the rotation or header write fails.
    pub fn seal(&self) -> Result<(), JournalError> {
        self.lock().sink.seal_head()
    }

    /// The signed block headers of the sealed live segments, oldest
    /// first (empty on sinks without sealing).
    ///
    /// # Errors
    /// [`JournalError::Io`] if a header cannot be read;
    /// [`JournalError::SealViolation`] if one does not parse.
    pub fn sealed_headers(&self) -> Result<Vec<BlockHeader>, JournalError> {
        self.lock().sink.sealed_headers()
    }

    /// Builds [`InclusionProof`]s for every *sealed* entry of `job` —
    /// Merkle path plus signed block header, checkable with
    /// [`InclusionProof::verify`] and nothing else. Entries in the
    /// unsealed head segment are not covered; call [`Journal::seal`]
    /// first to include them.
    ///
    /// # Errors
    /// [`JournalError::Io`] if a segment cannot be read;
    /// [`JournalError::SealViolation`] if a sealed segment holds an
    /// unparseable line.
    pub fn prove(&self, job: JobId) -> Result<Vec<InclusionProof>, JournalError> {
        self.lock().sink.prove(job)
    }

    /// Full ledger verification: parses the journal — which walks the
    /// hash chain, so duplication, reordering, deletion and in-place
    /// edits surface as [`JournalError::ChainViolation`] naming the first
    /// bad entry — then re-verifies every sealed block header under the
    /// fleet `seed`'s [`SealKey`] (forged, altered or foreign-fleet seals
    /// surface as [`JournalError::SealViolation`]).
    ///
    /// # Errors
    /// [`JournalError::Io`], [`JournalError::Corrupt`],
    /// [`JournalError::ChainViolation`] or [`JournalError::SealViolation`]
    /// as above.
    pub fn verify(&self, seed: u64) -> Result<LedgerVerification, JournalError> {
        let guard = self.lock();
        let text = guard.sink.contents()?;
        let (entries, tail) = parse_journal(&text)?;
        let seals_verified = guard.sink.verify_seals(&SealKey::from_seed(seed))?;
        Ok(LedgerVerification {
            entries: entries.len() as u64,
            tail,
            seals_verified,
        })
    }
}

/// What [`Journal::verify`] established about a ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerVerification {
    /// Entries the chain walk vouched for.
    pub entries: u64,
    /// Whether a torn (crash-artifact) tail was dropped.
    pub tail: TailStatus,
    /// Sealed block headers that verified under the seed's key.
    pub seals_verified: u64,
}

/// The journal layer's self-accounting metric families: they describe
/// this *process* (its own appends, commits, rotations, syncs and
/// recoveries), not the metered workload, so a recovered service
/// legitimately reads `fleet_recoveries_total 1` where the uninterrupted
/// original reads 0.
pub const SELF_ACCOUNTING_FAMILIES: [&str; 15] = [
    "fleet_journal_appends_total",
    "fleet_journal_bytes_total",
    "fleet_journal_group_commits_total",
    "fleet_journal_rotations_total",
    "fleet_journal_fsyncs_total",
    "fleet_journal_segments_retired_total",
    "fleet_journal_retries_total",
    "fleet_journal_failures_total",
    "fleet_ledger_seals_total",
    "fleet_proofs_emitted_total",
    "fleet_chain_violations_total",
    "fleet_recoveries_total",
    "fleet_observer_spans_total",
    "fleet_observer_spans_dropped_total",
    "fleet_observer_overhead_seconds_total",
];

/// The live-pipeline metric families: queue/inflight gauges, the
/// rejected-submissions counter and the worker-supervision families
/// describe the running ingest pipeline at a moment in time, not the
/// metered workload, and are timing-dependent while the pipeline is
/// live — so checkpoints exclude them (see
/// [`crate::FleetService::checkpoint`]).
pub const LIVE_PIPELINE_FAMILIES: [&str; 11] = [
    "fleet_queue_depth",
    "fleet_inflight",
    "fleet_submissions_rejected",
    "fleet_quarantined",
    "fleet_stage_seconds",
    "fleet_stage_seconds_by_tenant",
    "fleet_pool_buffers",
    "fleet_worker_restarts_total",
    "fleet_jobs_reassigned_total",
    "fleet_poison_jobs_total",
    "fleet_workers_live",
];

/// The metric families a checkpoint excludes from its snapshot —
/// [`SELF_ACCOUNTING_FAMILIES`] plus [`LIVE_PIPELINE_FAMILIES`] —
/// committed inside every sealed [`BlockHeader`] so the exclusion policy
/// itself is part of the signed evidence.
pub fn excluded_metric_families() -> Vec<String> {
    SELF_ACCOUNTING_FAMILIES
        .iter()
        .chain(LIVE_PIPELINE_FAMILIES.iter())
        .map(|family| (*family).to_string())
        .collect()
}

/// Strips the named families' series (and their `HELP`/`TYPE` headers)
/// from a metrics exposition. Histogram families render their series
/// under derived `_bucket`/`_sum`/`_count` names, so those are stripped
/// alongside the bare family name.
pub fn strip_families(exposition: &str, families: &[&str]) -> String {
    exposition
        .lines()
        .filter(|line| {
            !families.iter().any(|family| {
                ["", "_bucket", "_sum", "_count"].iter().any(|suffix| {
                    line.starts_with(&format!("{family}{suffix} "))
                        || line.starts_with(&format!("{family}{suffix}{{"))
                }) || line.starts_with(&format!("# HELP {family} "))
                    || line.starts_with(&format!("# TYPE {family} "))
            })
        })
        .map(|line| format!("{line}\n"))
        .collect()
}

/// Strips the [`SELF_ACCOUNTING_FAMILIES`] series from a metrics
/// exposition, leaving the metering series — the part of the exposition
/// the recovery contract guarantees byte-identical.
pub fn strip_self_accounting(exposition: &str) -> String {
    strip_families(exposition, &SELF_ACCOUNTING_FAMILIES)
}

/// The metering exposition: everything except the journal's
/// self-accounting counters and the live-pipeline gauges — the series
/// the recovery contract guarantees byte-identical **whatever process**
/// produced them (streamed or batch, original or recovered).
pub fn metering_exposition(exposition: &str) -> String {
    let families: Vec<&str> = SELF_ACCOUNTING_FAMILIES
        .iter()
        .chain(LIVE_PIPELINE_FAMILIES.iter())
        .copied()
        .collect();
    strip_families(exposition, &families)
}

/// Parses JSON-lines journal text **and walks its hash chain**. A final
/// line missing its newline — the exact artifact a crash mid-append
/// leaves, since each entry and its newline are written in one call — is
/// dropped with [`TailStatus::Truncated`]; an unparseable *terminated*
/// line anywhere (tail included) was fully written and later damaged, so
/// it is [`JournalError::Corrupt`].
///
/// Every surviving line must also sit on the evidence chain: its `prev`
/// field must equal the chain link recomputed over the preceding
/// canonical line bytes. The first entry must chain from
/// [`evidence::genesis`] — unless it is a [`JournalEntry::Checkpoint`],
/// which may carry any anchor, because a retired segmented journal
/// legitimately starts mid-chain at its leading checkpoint. Duplicated,
/// reordered, deleted or edited lines break the fold and surface as
/// [`JournalError::ChainViolation`] naming the **first** entry the chain
/// no longer vouches for.
pub fn parse_journal(text: &str) -> Result<(Vec<JournalEntry>, TailStatus), JournalError> {
    let mut entries = Vec::new();
    let mut offset = 0usize;
    let mut line_no = 0usize;
    let mut tail = TailStatus::Clean;
    let mut link = evidence::genesis();
    let mut anchored = false;
    while offset < text.len() {
        let rest = &text[offset..];
        let (line, consumed, terminated) = match rest.find('\n') {
            Some(at) => (&rest[..at], at + 1, true),
            None => (rest, rest.len(), false),
        };
        line_no += 1;
        let is_last = offset + consumed >= text.len();
        if line.trim().is_empty() {
            offset += consumed;
            continue;
        }
        match serde_json::from_str::<ChainedLine>(line) {
            Ok(chained) => {
                if !terminated {
                    // A complete-looking parse without a newline is still a
                    // torn append: the writer appends line + newline in one
                    // write, so the newline's absence means the line may be
                    // a prefix of a longer record. Drop it.
                    tail = TailStatus::Truncated {
                        dropped_bytes: line.len(),
                    };
                } else {
                    let subject = match chained.entry.job() {
                        Some(job) => format!("{} entry for {job}", chained.entry.label()),
                        None => format!("{} entry", chained.entry.label()),
                    };
                    let claimed = evidence::decode_hex(&chained.prev).ok_or_else(|| {
                        JournalError::ChainViolation {
                            line: line_no,
                            message: format!("{subject} carries an unparseable prev link"),
                        }
                    })?;
                    if !anchored
                        && claimed != link
                        && matches!(chained.entry, JournalEntry::Checkpoint(_))
                    {
                        // A retired journal starts at its leading
                        // checkpoint, whose prev is the chain head the
                        // fold reached before retirement: adopt it.
                        link = claimed;
                    }
                    if claimed != link {
                        return Err(JournalError::ChainViolation {
                            line: line_no,
                            message: format!(
                                "{subject} claims prev {}… but the chain here reads {}… \
                                 (duplicated, reordered, deleted or edited evidence at or \
                                 before this line)",
                                &chained.prev[..8.min(chained.prev.len())],
                                &evidence::encode_hex(&link)[..8],
                            ),
                        });
                    }
                    anchored = true;
                    link = evidence::chain_link(&link, line.as_bytes());
                    entries.push(chained.entry);
                }
            }
            // Only an *unterminated* final line is a crash artifact: the
            // writer appends line + newline in one write, so a torn write
            // can never include the newline. A newline-terminated line
            // that fails to parse was fully written and later damaged —
            // corruption, wherever it sits.
            Err(e) if is_last && !terminated => {
                tail = TailStatus::Truncated {
                    dropped_bytes: line.len(),
                };
                let _ = e;
            }
            Err(e) => {
                return Err(JournalError::Corrupt {
                    line: line_no,
                    message: e.to_string(),
                });
            }
        }
        offset += consumed;
    }
    Ok((entries, tail))
}

/// The suffix of `entries` a recovery should replay: from the **last**
/// [`JournalEntry::Checkpoint`] onward (a cadence-written checkpoint
/// folds everything before it, so earlier entries are redundant), or the
/// whole slice when no checkpoint is present.
///
/// A retired [`SegmentedFileSink`] directory already starts at its
/// latest checkpoint; this helper makes recovery cost bounded for
/// unretired journals (e.g. a [`CheckpointCadence`] service over a plain
/// file sink) too. See [`crate::FleetService::recover_latest`].
pub fn recovery_window(entries: &[JournalEntry]) -> &[JournalEntry] {
    match entries
        .iter()
        .rposition(|entry| matches!(entry, JournalEntry::Checkpoint(_)))
    {
        Some(at) => &entries[at..],
        None => entries,
    }
}

/// How a journal replay went (see [`crate::FleetService::recover`]).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// `Run` entries re-posted through the service.
    pub runs_replayed: u64,
    /// Runs folded into checkpoints that were applied instead of replayed.
    pub checkpoint_runs: u64,
    /// Journaled `Invoice`/`Verdict` receipts that matched the re-derived
    /// posting bit for bit.
    pub postings_confirmed: u64,
    /// Jobs whose journaled receipt disagreed with the replay — evidence
    /// the journal was modified after the fact (each receipt entry that
    /// disagrees contributes one element, so a job can appear twice).
    pub mismatches: Vec<JobId>,
    /// Runs whose receipts never made it to the journal (the crash tail);
    /// their effects were re-derived and posted during recovery.
    pub unconfirmed: u64,
    /// Jobs whose id appeared in more than one replayed `Run` entry (or
    /// in a replayed entry *and* the applied checkpoint). Populated only
    /// by the *lenient* paths ([`crate::FleetService::recover_lenient`]
    /// and [`compact`]'s internal replay): strict recovery
    /// ([`crate::FleetService::recover`]) hard-errors on the first
    /// duplicate with [`RecoveryError::ChainViolation`] instead, because
    /// on a chained journal a duplicated entry can only be a copy-paste —
    /// a legitimate resubmission would carry a fresh `prev` link.
    pub duplicate_runs: Vec<JobId>,
    /// `Accepted` entries replayed (submission-side write-ahead records).
    pub accepted: u64,
    /// Jobs that were accepted but never released before the journal
    /// ended — the work a crash interrupted — in submission order.
    /// Resubmitting exactly these specs to the restarted service
    /// reproduces the uninterrupted run deterministically.
    pub unreleased: Vec<JobSpec>,
    /// `Poisoned` verdicts replayed: jobs the executor fleet retired
    /// after they killed the configured run of workers. Each retired its
    /// matching `Accepted` entry (the job *was* resolved — do not
    /// resubmit it) without posting anything to the ledger.
    pub poisoned: u64,
}

impl RecoveryReport {
    /// Whether every journaled receipt matched its re-derived posting.
    pub fn is_consistent(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Why a journal replay was rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryError {
    /// An `Invoice`/`Verdict` entry named a job with no preceding `Run`
    /// entry — the journal is not a valid write-ahead sequence.
    OrphanPosting(JobId),
    /// A `Checkpoint` entry appeared after runs had already been replayed;
    /// checkpoints are only valid as a journal's (possibly repeated)
    /// leading entries.
    MisplacedCheckpoint,
    /// Strict recovery found the same job in more than one `Run` entry
    /// (or in a replayed entry *and* the applied checkpoint). On a
    /// chained journal this is duplicated evidence, not a resubmission —
    /// use [`crate::FleetService::recover_lenient`] to replay anyway and
    /// inspect [`RecoveryReport::duplicate_runs`].
    ChainViolation(JobId),
    /// [`compact`] refused to fold a prefix whose receipts disagree with
    /// the replay: folding would erase the tamper evidence into a
    /// clean-looking checkpoint. Investigate (recover the original and
    /// inspect [`RecoveryReport::mismatches`]) before compacting.
    InconsistentPrefix {
        /// The jobs whose receipts disagreed.
        mismatches: Vec<JobId>,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::OrphanPosting(job) => {
                write!(f, "journal posting for {job} has no preceding run entry")
            }
            RecoveryError::MisplacedCheckpoint => {
                f.write_str("checkpoint entry after replayed runs")
            }
            RecoveryError::ChainViolation(job) => {
                write!(f, "duplicated run entry for {job} in a chained journal")
            }
            RecoveryError::InconsistentPrefix { mismatches } => {
                write!(
                    f,
                    "refusing to compact: {} receipt(s) disagree with the replay",
                    mismatches.len()
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Folds the oldest `fold_runs` records of `entries` — their `Run`,
/// `Invoice` and `Verdict` entries, plus any leading `Checkpoint` — into a
/// single [`Checkpoint`] entry, returning the compacted sequence
/// `[Checkpoint, …kept entries…]`.
///
/// `scratch` must be a *fresh* service configured identically to the
/// journal's origin (same [`crate::FleetConfig`], same tenant
/// registrations): the fold is computed by replaying the prefix through
/// it, exactly as recovery would. Entries are partitioned by job id, so a
/// receipt is never separated from its run, whatever their interleaving.
///
/// Recovering from the compacted sequence yields bit-identical state to
/// recovering from the original (`tests/fleet.rs` enforces this).
///
/// # Errors
/// Propagates [`RecoveryError`] from replaying the folded prefix, and
/// refuses with [`RecoveryError::InconsistentPrefix`] if any folded
/// receipt disagrees with the replay — folding would erase the tamper
/// evidence into a clean-looking checkpoint.
pub fn compact(
    entries: &[JournalEntry],
    fold_runs: usize,
    scratch: &mut FleetService,
) -> Result<Vec<JournalEntry>, RecoveryError> {
    let fold_ids: std::collections::BTreeSet<JobId> = entries
        .iter()
        .filter_map(|entry| match entry {
            JournalEntry::Run(record) => Some(record.job.id),
            _ => None,
        })
        .take(fold_runs)
        .collect();
    let mut folded = Vec::new();
    let mut kept = Vec::new();
    for entry in entries {
        match entry.job() {
            None => {
                if !kept.is_empty() {
                    return Err(RecoveryError::MisplacedCheckpoint);
                }
                folded.push(entry.clone());
            }
            Some(job) if fold_ids.contains(&job) => folded.push(entry.clone()),
            Some(_) => kept.push(entry.clone()),
        }
    }
    let report = scratch.replay(&folded)?;
    if !report.is_consistent() {
        // Folding a tampered prefix would erase the evidence into a
        // clean-looking checkpoint.
        return Err(RecoveryError::InconsistentPrefix {
            mismatches: report.mismatches,
        });
    }
    let mut compacted = Vec::with_capacity(kept.len() + 1);
    compacted.push(JournalEntry::checkpoint(scratch.checkpoint()));
    compacted.append(&mut kept);
    Ok(compacted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Fleet, FleetConfig, JobSpec};
    use trustmeter_workloads::Workload;

    fn record() -> RunRecord {
        Fleet::new(FleetConfig::new(1, 7)).run_one(&JobSpec::clean(
            0,
            TenantId(1),
            Workload::LoopO,
            0.001,
        ))
    }

    #[test]
    fn entries_round_trip_through_json_lines() {
        let journal = Journal::in_memory();
        let run = JournalEntry::run(record());
        journal.append(&run).unwrap();
        let (entries, tail) = journal.entries().unwrap();
        assert_eq!(tail, TailStatus::Clean);
        assert_eq!(entries, vec![run]);
        let stats = journal.stats();
        assert_eq!(stats.appends, 1);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn truncated_tail_is_dropped() {
        let journal = Journal::in_memory();
        journal.append(&JournalEntry::run(record())).unwrap();
        let text = journal.lock().sink.contents().unwrap();
        // A crash mid-append leaves a partial final line.
        let torn = format!("{text}{}", &text[..text.len() / 2]);
        let (entries, tail) = parse_journal(&torn).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(tail.is_truncated());
    }

    #[test]
    fn unterminated_final_line_is_dropped_even_if_parseable() {
        let journal = Journal::in_memory();
        journal.append(&JournalEntry::run(record())).unwrap();
        journal.append(&JournalEntry::run(record())).unwrap();
        let text = journal.lock().sink.contents().unwrap();
        // Strip the final newline: the last line parses but is torn.
        let torn = &text[..text.len() - 1];
        let (entries, tail) = parse_journal(torn).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(tail.is_truncated());
    }

    #[test]
    fn terminated_corrupt_final_line_is_an_error() {
        // Appends write the line and its newline in one call, so a torn
        // write can never be newline-terminated: a terminated line that
        // fails to parse was damaged after the fact.
        let journal = Journal::in_memory();
        journal.append(&JournalEntry::run(record())).unwrap();
        let text = journal.lock().sink.contents().unwrap();
        let damaged = format!("{text}{{\"Run\":garbage}}\n");
        match parse_journal(&damaged) {
            Err(JournalError::Corrupt { line: 2, .. }) => {}
            other => panic!("expected corruption at line 2, got {other:?}"),
        }
    }

    #[test]
    fn append_run_is_byte_identical_to_the_enum_path() {
        let record = record();
        let via_borrow = Journal::in_memory();
        via_borrow.append_run(&record).unwrap();
        let via_enum = Journal::in_memory();
        via_enum.append(&JournalEntry::run(record.clone())).unwrap();
        assert_eq!(
            via_borrow.lock().sink.contents().unwrap(),
            via_enum.lock().sink.contents().unwrap()
        );
        assert_eq!(via_borrow.stats(), via_enum.stats());
        let (entries, _) = via_borrow.entries().unwrap();
        assert_eq!(entries, vec![JournalEntry::run(record)]);
    }

    #[test]
    fn reopening_a_torn_file_repairs_the_tail_before_appending() {
        let path = std::env::temp_dir().join(format!(
            "trustmeter-journal-torn-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::file(&path).unwrap();
            journal.append(&JournalEntry::run(record())).unwrap();
        }
        // A crash mid-append leaves an unterminated fragment.
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(br#"{"Run":{"job":{"id":7"#).unwrap();
        }
        // Reopening truncates the fragment, so the next append starts a
        // fresh line instead of merging into the torn one.
        let reopened = Journal::file(&path).unwrap();
        reopened.append(&JournalEntry::run(record())).unwrap();
        let (entries, tail) = reopened.entries().unwrap();
        assert_eq!(tail, TailStatus::Clean, "repair removed the torn tail");
        assert_eq!(entries.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_before_the_tail_is_an_error() {
        let journal = Journal::in_memory();
        journal.append(&JournalEntry::run(record())).unwrap();
        let text = journal.lock().sink.contents().unwrap();
        let corrupted = format!("not json\n{text}");
        match parse_journal(&corrupted) {
            Err(JournalError::Corrupt { line: 1, .. }) => {}
            other => panic!("expected corruption at line 1, got {other:?}"),
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let journal = Journal::in_memory();
        journal.append(&JournalEntry::run(record())).unwrap();
        let text = journal.lock().sink.contents().unwrap();
        let padded = format!("\n{text}\n\n");
        let (entries, tail) = parse_journal(&padded).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(tail, TailStatus::Clean);
    }

    #[test]
    fn file_sink_persists_across_reopen() {
        let path = std::env::temp_dir().join(format!(
            "trustmeter-journal-test-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::file(&path).unwrap();
            journal.append(&JournalEntry::run(record())).unwrap();
        }
        // A fresh handle (a restarted process) reads the same entries and
        // appends after them.
        let reopened = Journal::file(&path).unwrap();
        assert_eq!(reopened.stats().appends, 0, "stats are per handle");
        reopened.append(&JournalEntry::run(record())).unwrap();
        let (entries, tail) = reopened.entries().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(tail, TailStatus::Clean);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn entry_labels_and_jobs() {
        let run = JournalEntry::run(record());
        assert_eq!(run.label(), "run");
        assert_eq!(run.job(), Some(JobId(0)));
    }

    /// A unique scratch directory for one segmented-sink test.
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("trustmeter-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_segments(dir: &Path) -> Journal {
        // A few hundred bytes per segment: every run entry rotates.
        Journal::segmented(dir, SegmentConfig::default().with_segment_bytes(512)).unwrap()
    }

    #[test]
    fn batched_appends_are_byte_identical_to_per_entry_appends() {
        let rec = record();
        let entries = vec![
            JournalEntry::run(rec.clone()),
            JournalEntry::run(rec.clone()),
        ];
        let one_by_one = Journal::in_memory();
        for entry in &entries {
            one_by_one.append(entry).unwrap();
        }
        let batched = Journal::in_memory();
        batched.append_batch(&entries).unwrap();
        assert_eq!(
            batched.lock().sink.contents().unwrap(),
            one_by_one.lock().sink.contents().unwrap()
        );
        let runs = Journal::in_memory();
        runs.append_runs(&[rec.clone(), rec.clone()]).unwrap();
        assert_eq!(
            runs.lock().sink.contents().unwrap(),
            one_by_one.lock().sink.contents().unwrap()
        );
        // Counters: same appends/bytes, but one commit for the batch.
        assert_eq!(runs.stats().appends, 2);
        assert_eq!(runs.stats().bytes, one_by_one.stats().bytes);
        assert_eq!(runs.stats().group_commits, 1);
        assert_eq!(one_by_one.stats().group_commits, 0);
    }

    #[test]
    fn segmented_sink_rotates_at_the_byte_threshold() {
        let dir = scratch_dir("rotate");
        let journal = tiny_segments(&dir);
        for _ in 0..3 {
            journal.append(&JournalEntry::run(record())).unwrap();
        }
        let stats = journal.stats();
        assert!(stats.rotations >= 2, "stats: {stats:?}");
        let segments = std::fs::read_dir(&dir).unwrap().count();
        assert!(segments >= 3, "expected ≥3 live segments, got {segments}");
        // Reading back concatenates the segments in order.
        let (entries, tail) = journal.entries().unwrap();
        assert_eq!(tail, TailStatus::Clean);
        assert_eq!(entries.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segmented_sink_survives_reopen_and_repairs_last_segment_only() {
        let dir = scratch_dir("reopen");
        {
            let journal = tiny_segments(&dir);
            for _ in 0..2 {
                journal.append(&JournalEntry::run(record())).unwrap();
            }
        }
        // Tear the LAST segment's tail, as a crash mid-append would.
        let mut segments: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segments.sort();
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new()
                .append(true)
                .open(segments.last().unwrap())
                .unwrap();
            file.write_all(br#"{"Run":{"job":{"id":7"#).unwrap();
        }
        // Reopening repairs the torn tail and continues the journal.
        let reopened = tiny_segments(&dir);
        reopened.append(&JournalEntry::run(record())).unwrap();
        let (entries, tail) = reopened.entries().unwrap();
        assert_eq!(tail, TailStatus::Clean, "reopen repaired the torn tail");
        assert_eq!(entries.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_in_an_earlier_segment_is_corruption() {
        let dir = scratch_dir("earlier-torn");
        {
            let journal = tiny_segments(&dir);
            for _ in 0..2 {
                journal.append(&JournalEntry::run(record())).unwrap();
            }
        }
        let mut segments: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segments.sort();
        assert!(segments.len() >= 2);
        // Damage the FIRST (sealed) segment: strip its trailing newline.
        // Sealed segments cannot legally be torn, so the journal must
        // refuse, not silently drop entries mid-file.
        let first = &segments[0];
        let text = std::fs::read_to_string(first).unwrap();
        std::fs::write(first, &text[..text.len() - 1]).unwrap();
        let journal = tiny_segments(&dir);
        match journal.entries() {
            Err(JournalError::Corrupt { .. }) => {}
            other => panic!("expected corruption, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rotates_retires_and_leads_the_live_directory() {
        let dir = scratch_dir("checkpoint");
        let journal = tiny_segments(&dir);
        for _ in 0..3 {
            journal.append(&JournalEntry::run(record())).unwrap();
        }
        let before = std::fs::read_dir(&dir).unwrap().count();
        assert!(before >= 3);
        // A checkpoint folds everything before it: the sink rotates so the
        // checkpoint leads a fresh segment, then deletes the history.
        let checkpoint = Checkpoint {
            runs: 3,
            ledger: Ledger::new(),
            audit: AuditorState::default(),
            metrics: MetricsRegistry::new(),
        };
        journal.append_checkpoint(&checkpoint).unwrap();
        let stats = journal.stats();
        assert!(
            stats.segments_retired >= before as u64 - 1,
            "stats: {stats:?}"
        );
        let (entries, _) = journal.entries().unwrap();
        assert_eq!(entries[0].label(), "checkpoint", "checkpoint leads");
        assert_eq!(entries.len(), 1, "history was retired");
        // Appends continue after the checkpoint.
        journal.append(&JournalEntry::run(record())).unwrap();
        let (entries, _) = journal.entries().unwrap();
        assert_eq!(entries.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_policy_fsyncs_on_entry_and_byte_thresholds() {
        let dir = scratch_dir("group-fsync");
        let config = SegmentConfig::default().with_fsync(FsyncPolicy::GroupCommit {
            max_entries: 2,
            max_bytes: 1024 * 1024,
        });
        let journal = Journal::segmented(&dir, config).unwrap();
        journal.append(&JournalEntry::run(record())).unwrap();
        assert_eq!(journal.stats().fsyncs, 0, "below both thresholds");
        journal.append(&JournalEntry::run(record())).unwrap();
        assert_eq!(journal.stats().fsyncs, 1, "entry threshold reached");
        journal.append(&JournalEntry::run(record())).unwrap();
        assert_eq!(journal.stats().fsyncs, 1, "window restarts after a sync");
        std::fs::remove_dir_all(&dir).unwrap();

        let dir = scratch_dir("every-fsync");
        let journal = Journal::segmented(
            &dir,
            SegmentConfig::default().with_fsync(FsyncPolicy::EveryAppend),
        )
        .unwrap();
        journal.append_runs(&[record(), record()]).unwrap();
        assert_eq!(journal.stats().fsyncs, 1, "one sync per group commit");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_window_seeks_the_last_checkpoint() {
        let run = JournalEntry::run(record());
        let checkpoint = || {
            JournalEntry::checkpoint(Checkpoint {
                runs: 0,
                ledger: Ledger::new(),
                audit: AuditorState::default(),
                metrics: MetricsRegistry::new(),
            })
        };
        let entries = vec![
            run.clone(),
            checkpoint(),
            run.clone(),
            checkpoint(),
            run.clone(),
        ];
        let window = recovery_window(&entries);
        assert_eq!(window.len(), 2);
        assert_eq!(window[0].label(), "checkpoint");
        assert_eq!(window[1].label(), "run");
        // No checkpoint: the whole journal is the window.
        let plain = vec![run.clone(), run];
        assert_eq!(recovery_window(&plain).len(), 2);
    }

    #[test]
    fn chained_lines_carry_prev_links_and_reject_reordering() {
        let journal = Journal::in_memory();
        for _ in 0..3 {
            journal.append(&JournalEntry::run(record())).unwrap();
        }
        let text = journal.text().unwrap();
        assert_eq!(
            text.matches("\"prev\":").count(),
            3,
            "every line is chained"
        );
        journal.entries().unwrap();

        // Swapping any two lines breaks the chain at the earlier slot.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.swap(1, 2);
        let mut swapped = lines.join("\n");
        swapped.push('\n');
        match parse_journal(&swapped) {
            Err(JournalError::ChainViolation { line: 2, message }) => {
                assert!(message.contains("claims prev"), "{message}");
            }
            other => panic!("expected a chain violation at line 2, got {other:?}"),
        }
    }

    #[test]
    fn sealing_rotates_out_signed_headers_that_prove_inclusion() {
        let dir = scratch_dir("seal-roundtrip");
        let config = SegmentConfig::default().with_seal(42);
        let journal = Journal::segmented(&dir, config).unwrap();
        journal.append(&JournalEntry::run(record())).unwrap();
        assert!(
            journal.sealed_headers().unwrap().is_empty(),
            "head unsealed"
        );
        journal.seal().unwrap();
        assert_eq!(journal.stats().seals, 1);

        let headers = journal.sealed_headers().unwrap();
        assert_eq!(headers.len(), 1);
        assert_eq!(headers[0].entries, 1);
        assert_eq!(headers[0].excluded_families, excluded_metric_families());
        assert!(headers[0].verify_seal(&SealKey::from_seed(42)));
        assert!(!headers[0].verify_seal(&SealKey::from_seed(43)));

        let proofs = journal.prove(JobId(0)).unwrap();
        assert_eq!(proofs.len(), 1);
        let entry = proofs[0].verify(&SealKey::from_seed(42)).unwrap();
        assert_eq!(entry.label(), "run");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sealed_reopen_continues_the_chain_where_it_left_off() {
        let dir = scratch_dir("seal-reopen");
        let config = SegmentConfig::default().with_seal(42);
        let journal = Journal::segmented(&dir, config).unwrap();
        journal.append(&JournalEntry::run(record())).unwrap();
        journal.seal().unwrap();
        drop(journal);

        // The reopened handle rescans the chain head and keeps linking.
        let journal = Journal::segmented(&dir, config).unwrap();
        journal.append(&JournalEntry::run(record())).unwrap();
        journal.seal().unwrap();
        let (entries, tail) = journal.entries().unwrap();
        assert_eq!(tail, TailStatus::Clean);
        assert_eq!(entries.len(), 2, "both sessions' entries chain cleanly");
        let verification = journal.verify(42).unwrap();
        assert_eq!(verification.entries, 2);
        assert_eq!(verification.seals_verified, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
