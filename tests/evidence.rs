//! Adversarial tamper suite for the evidence ledger: a dishonest
//! provider (or a disk-level attacker) edits the journal after the fact
//! — duplicating a billing line, reordering lines, deleting evidence,
//! flipping bytes inside a sealed segment, splicing in a segment from a
//! different fleet — and every mutation must be *detected and located*:
//! the chain walk or the seal check names the first bad entry. The
//! untampered ledger, meanwhile, stays bit-identically recoverable at
//! 1, 2 and 8 workers, and the dispute flow settles invoices from
//! sealed proofs without replaying the journal.

use std::path::{Path, PathBuf};

use trustmeter::prelude::*;

const SCALE: f64 = 0.001;
const SEED: u64 = 77;

/// A mixed batch: four tenants, all four workloads, one launch-time
/// attack stripe (ids ≡ 0 mod 4) so disputes see both clean and
/// overbilled runs.
fn batch(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let tenant = TenantId((i % 4) as u32 + 1);
            let workload = Workload::ALL[(i % 4) as usize];
            if i % 4 == 0 {
                JobSpec::attacked(i, tenant, workload, SCALE, AttackSpec::Shell)
            } else {
                JobSpec::clean(i, tenant, workload, SCALE)
            }
        })
        .collect()
}

fn service_seeded(workers: usize, seed: u64, journal: Option<Journal>) -> FleetService {
    let mut service = FleetService::new(FleetConfig::new(workers, seed));
    for id in 1..=4u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    match journal {
        Some(journal) => service.with_journal(journal),
        None => service,
    }
}

/// A scratch segment directory unique to one test.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("trustmeter-evidence-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small segments so the batch rotates (and seals) several times.
fn sealed_config(seed: u64) -> SegmentConfig {
    SegmentConfig::default()
        .with_segment_bytes(4 * 1024)
        .with_seal(seed)
}

/// Builds a sealed ledger on disk: processes `jobs` through a sealed
/// segmented journal, then seals the head so *every* entry sits in a
/// sealed segment. Returns the directory.
fn build_sealed(tag: &str, seed: u64, jobs: u64) -> PathBuf {
    let dir = scratch_dir(tag);
    let journal = Journal::segmented(&dir, sealed_config(seed)).unwrap();
    let mut service = service_seeded(2, seed, Some(journal.clone()));
    service.process(&batch(jobs));
    journal.seal().unwrap();
    dir
}

/// The live segment files of `dir`, in journal order.
fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
        .collect();
    files.sort();
    files
}

/// One journal line located on disk.
#[derive(Clone)]
struct Located {
    file: PathBuf,
    /// Index within the segment file.
    index: usize,
    /// 0-based line number across the concatenated journal.
    global: usize,
    text: String,
}

/// Every journal line of `dir`, in journal order.
fn global_lines(dir: &Path) -> Vec<Located> {
    let mut out = Vec::new();
    let mut global = 0;
    for file in segment_files(dir) {
        let text = std::fs::read_to_string(&file).unwrap();
        for (index, line) in text.lines().enumerate() {
            out.push(Located {
                file: file.clone(),
                index,
                global,
                text: line.to_string(),
            });
            global += 1;
        }
    }
    out
}

fn read_lines(file: &Path) -> Vec<String> {
    std::fs::read_to_string(file)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

fn write_lines(file: &Path, lines: &[String]) {
    let mut text = lines.join("\n");
    text.push('\n');
    std::fs::write(file, text).unwrap();
}

/// Reopens a tampered directory and demands a [`JournalError::ChainViolation`]
/// from the parse walk, returning its 1-based line and message.
fn expect_chain_violation(dir: &Path, seed: u64) -> (usize, String) {
    let journal = Journal::segmented(dir, sealed_config(seed)).unwrap();
    match journal.entries() {
        Err(JournalError::ChainViolation { line, message }) => (line, message),
        other => panic!("expected a chain violation, got {other:?}"),
    }
}

#[test]
fn duplicated_run_line_is_located_as_a_chain_violation() {
    let dir = build_sealed("dup", SEED, 12);
    // Copy-paste a mid-stream Run line right after itself — the classic
    // double-billing forgery the paper's threat model worries about.
    let target = global_lines(&dir)
        .into_iter()
        .find(|l| l.global >= 3 && l.text.contains("\"Run\""))
        .unwrap();
    let mut file_lines = read_lines(&target.file);
    file_lines.insert(target.index + 1, target.text.clone());
    write_lines(&target.file, &file_lines);

    let (line, message) = expect_chain_violation(&dir, SEED);
    assert_eq!(
        line,
        target.global + 2,
        "the duplicate itself is the first bad line"
    );
    assert!(message.contains("run entry"), "names the entry: {message}");
    assert!(
        message.contains("claims prev"),
        "explains the break: {message}"
    );
}

#[test]
fn swapped_lines_are_located_as_a_chain_violation() {
    let dir = build_sealed("swap", SEED, 12);
    // Reorder two adjacent mid-file lines (e.g. move a cheap invoice in
    // front of an expensive one's run).
    let target = global_lines(&dir)
        .into_iter()
        .find(|l| l.global >= 3 && read_lines(&l.file).len() > l.index + 1)
        .unwrap();
    let mut file_lines = read_lines(&target.file);
    file_lines.swap(target.index, target.index + 1);
    write_lines(&target.file, &file_lines);

    let (line, message) = expect_chain_violation(&dir, SEED);
    assert_eq!(
        line,
        target.global + 1,
        "the earlier swapped slot is the first bad line"
    );
    assert!(
        message.contains("claims prev"),
        "explains the break: {message}"
    );
}

#[test]
fn deleted_mid_stream_line_is_located_as_a_chain_violation() {
    let dir = build_sealed("delete", SEED, 12);
    // Silently drop one piece of evidence from the middle of the stream.
    let lines = global_lines(&dir);
    let total = lines.len();
    let target = lines
        .into_iter()
        .find(|l| l.global >= 3 && l.global + 1 < total)
        .unwrap();
    let mut file_lines = read_lines(&target.file);
    file_lines.remove(target.index);
    write_lines(&target.file, &file_lines);

    let (line, message) = expect_chain_violation(&dir, SEED);
    assert_eq!(
        line,
        target.global + 1,
        "the line after the deletion inherits its slot and breaks there"
    );
    assert!(
        message.contains("claims prev"),
        "explains the break: {message}"
    );
}

/// Flips the first ASCII digit inside the entry payload of `line`,
/// keeping it valid JSON so detection is cryptographic, not syntactic.
fn flip_payload_digit(line: &str) -> String {
    let entry_at = line.find("\"entry\"").unwrap();
    let at = line[entry_at..]
        .char_indices()
        .find(|(_, c)| c.is_ascii_digit())
        .map(|(i, _)| entry_at + i)
        .unwrap();
    let mut bytes = line.as_bytes().to_vec();
    bytes[at] = if bytes[at] == b'0' { b'1' } else { b'0' };
    String::from_utf8(bytes).unwrap()
}

#[test]
fn flipped_byte_in_a_sealed_segment_breaks_the_chain() {
    let dir = build_sealed("flipmid", SEED, 12);
    // One flipped digit mid-stream: the edited line still parses, but the
    // next line's prev link no longer matches the re-folded chain.
    let lines = global_lines(&dir);
    let total = lines.len();
    let target = lines
        .into_iter()
        .find(|l| l.global >= 3 && l.global + 1 < total)
        .unwrap();
    let mut file_lines = read_lines(&target.file);
    file_lines[target.index] = flip_payload_digit(&file_lines[target.index]);
    write_lines(&target.file, &file_lines);

    let (line, message) = expect_chain_violation(&dir, SEED);
    assert_eq!(
        line,
        target.global + 2,
        "the edit surfaces at the next chained line"
    );
    assert!(
        message.contains("claims prev"),
        "explains the break: {message}"
    );
}

#[test]
fn flipped_byte_in_the_final_sealed_line_fails_the_seal() {
    let dir = build_sealed("fliplast", SEED, 12);
    // The last committed line has no successor to contradict it — the
    // chain walk alone cannot see the edit. The sealed block header can:
    // its trailing chain bound and Merkle root both disagree.
    let target = global_lines(&dir).last().cloned().unwrap();
    let mut file_lines = read_lines(&target.file);
    file_lines[target.index] = flip_payload_digit(&file_lines[target.index]);
    write_lines(&target.file, &file_lines);

    let journal = Journal::segmented(&dir, sealed_config(SEED)).unwrap();
    let (_, tail) = journal.entries().expect("the chain walk alone passes");
    assert_eq!(tail, TailStatus::Clean);
    match journal.verify(SEED) {
        Err(JournalError::SealViolation { message, .. }) => {
            assert!(
                message.contains("chain bound") || message.contains("merkle root"),
                "names the broken commitment: {message}"
            );
        }
        other => panic!("expected a seal violation, got {other:?}"),
    }
}

#[test]
fn spliced_segment_from_a_different_fleet_seed_is_rejected() {
    let ours = build_sealed("splice-ours", SEED, 12);
    let theirs = build_sealed("splice-theirs", 99, 12);
    let our_files = segment_files(&ours);
    let their_files = segment_files(&theirs);
    assert!(
        our_files.len() > 2 && their_files.len() > 2,
        "batch rotated"
    );

    // Replace our first segment (and its seal) with the other fleet's:
    // the foreign content chains internally, but our second segment's
    // leading prev link contradicts the foreign chain head.
    let foreign = std::fs::read_to_string(&their_files[0]).unwrap();
    let foreign_lines = foreign.lines().count();
    std::fs::write(&our_files[0], &foreign).unwrap();
    std::fs::copy(
        their_files[0].with_extension("seal"),
        our_files[0].with_extension("seal"),
    )
    .unwrap();
    let (line, message) = expect_chain_violation(&ours, SEED);
    assert_eq!(
        line,
        foreign_lines + 1,
        "the first line after the spliced segment is the first bad entry"
    );
    assert!(
        message.contains("claims prev"),
        "explains the break: {message}"
    );
}

#[test]
fn spliced_seal_sidecar_from_a_different_fleet_seed_is_rejected() {
    let ours = build_sealed("sealonly-ours", SEED, 12);
    let theirs = build_sealed("sealonly-theirs", 99, 12);
    // Keep our entries, swap in the foreign fleet's block header for our
    // first segment: the chain is intact, so only the seal check can
    // object.
    let spliced_file = segment_files(&ours)[0].clone();
    let spliced_segment: u64 = spliced_file
        .file_stem()
        .unwrap()
        .to_str()
        .unwrap()
        .trim_start_matches("segment-")
        .parse()
        .unwrap();
    std::fs::copy(
        segment_files(&theirs)[0].with_extension("seal"),
        spliced_file.with_extension("seal"),
    )
    .unwrap();
    let journal = Journal::segmented(&ours, sealed_config(SEED)).unwrap();
    journal.entries().expect("the chain itself is intact");
    match journal.verify(SEED) {
        Err(JournalError::SealViolation { segment, .. }) => {
            assert_eq!(segment, spliced_segment, "names the spliced segment");
        }
        other => panic!("expected a seal violation, got {other:?}"),
    }
}

#[test]
fn untampered_sealed_recovery_is_bit_identical_at_1_2_8_workers() {
    let jobs = batch(24);
    let mut baseline = service_seeded(4, SEED, None);
    let baseline_report = baseline.process(&jobs);

    for workers in [1usize, 2, 8] {
        let dir = scratch_dir(&format!("clean-{workers}"));
        let journal = Journal::segmented(&dir, sealed_config(SEED)).unwrap();
        let mut service = service_seeded(workers, SEED, Some(journal.clone()))
            .with_checkpoint_cadence(CheckpointCadence::every_n_runs(10));
        let mut stream = service.stream(IngestConfig::new(workers));
        for job in &jobs {
            stream.submit(job.clone()).expect("queue sized for batch");
            stream.pump();
        }
        let streamed_report = stream.finish();
        assert_eq!(
            streamed_report, baseline_report,
            "sealing must not perturb results at {workers} workers"
        );
        let stats = journal.stats();
        assert!(stats.rotations > 0, "segments rotated: {stats:?}");
        assert!(stats.seals > 0, "rotations sealed blocks: {stats:?}");
        assert!(
            stats.segments_retired > 0,
            "checkpoints retired sealed history: {stats:?}"
        );

        // Strict recovery from the sealed ledger is bit-identical.
        let reopened = Journal::segmented(&dir, sealed_config(SEED)).unwrap();
        let (entries, tail) = reopened.entries().unwrap();
        assert_eq!(tail, TailStatus::Clean);
        let mut recovered = service_seeded(workers, SEED, None);
        recovered.recover_latest(&entries).unwrap();
        assert_eq!(recovered.ledger(), service.ledger());
        assert_eq!(
            metering_exposition(&recovered.metrics_text()),
            metering_exposition(&service.metrics_text())
        );

        // And, once the head (which holds the final checkpoint — the
        // cadence retired everything it superseded) is sealed too, the
        // reopened ledger verifies cryptographically end to end.
        reopened.seal().unwrap();
        let verification = reopened.verify(SEED).unwrap();
        assert_eq!(verification.entries, entries.len() as u64);
        assert!(verification.seals_verified > 0, "{verification:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn dispute_settles_from_sealed_proofs_without_replay() {
    let dir = scratch_dir("dispute");
    let journal = Journal::segmented(&dir, sealed_config(SEED)).unwrap();
    let mut service = service_seeded(2, SEED, Some(journal.clone()));
    // Make job 0 a *runtime* (scheduling) attack: unlike the shell
    // attack, whose injected loop genuinely runs in the victim's context
    // (truth grows with the bill), scheduling inflates the bill over an
    // unchanged truth — the overcharge a dispute should surface.
    let mut jobs = batch(8);
    jobs[0] = JobSpec::attacked(
        0,
        TenantId(1),
        Workload::ALL[0],
        SCALE,
        AttackSpec::Scheduling { nice: -10 },
    );
    service.process(&jobs);

    // A clean job settles with its sealed invoice and a clean verdict.
    let clean = service.dispute(JobId(3)).unwrap();
    assert_eq!(clean.job, JobId(3));
    assert_eq!(clean.runs, 1, "one sealed run names the job");
    assert_eq!(clean.invoice.as_ref().unwrap().job, JobId(3));
    assert!(!clean.flagged());
    assert!(clean.overcharge_ratio().unwrap() > 0.0);

    // The shell-attacked job's sealed evidence shows the overcharge and
    // the anomalous verdict — pinned to proofs, not to the live ledger.
    let attacked = service.dispute(JobId(0)).unwrap();
    assert!(attacked.flagged(), "the sealed verdict carries the anomaly");
    assert!(
        attacked.overcharge_ratio().unwrap() > 1.0,
        "ratio: {:?}",
        attacked.overcharge_ratio()
    );

    // Every proof verifies standalone — key only, no journal, no replay —
    // and fails against every *other* sealed header.
    let key = SealKey::from_seed(SEED);
    let headers = journal.sealed_headers().unwrap();
    assert!(headers.len() > 1, "the batch sealed several blocks");
    for proof in clean.proofs.iter().chain(&attacked.proofs) {
        proof.verify(&key).unwrap();
        for header in headers.iter().filter(|h| h.segment != proof.header.segment) {
            assert!(
                proof.verify_against(header).is_err(),
                "proof for segment {} must not fold into segment {}",
                proof.header.segment,
                header.segment
            );
        }
    }

    // The exclusion list rides inside every sealed header, so a verifier
    // knows exactly which metric families the checkpoint left out.
    for header in &headers {
        assert_eq!(header.excluded_families, excluded_metric_families());
    }

    // Disputes are themselves metered.
    let text = service.metrics_text();
    assert!(text.contains("fleet_proofs_emitted_total"));
    assert!(text.contains("fleet_ledger_seals_total"));

    // No evidence, no settlement.
    assert!(matches!(
        service.dispute(JobId(555)),
        Err(DisputeError::NoEvidence(JobId(555)))
    ));
    let mut bare = service_seeded(1, SEED, None);
    assert!(matches!(
        bare.dispute(JobId(0)),
        Err(DisputeError::NoJournal)
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}
