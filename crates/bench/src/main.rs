//! `trustmeter-bench` — the fleet perf harness.
//!
//! Streams a fixed audited batch through a [`FleetService`] worker pool
//! twice — once without persistence and once write-ahead journaling every
//! run and receipt to a file — and writes a JSON report
//! (`BENCH_fleet.json` by default) with wall clock, jobs/sec, the
//! auditor's replay counters and the journal append/byte counters, so
//! both the performance trajectory of the audited streaming path *and*
//! the overhead of durability are tracked from run to run.
//!
//! ```text
//! trustmeter-bench [--smoke] [--jobs N] [--workers N] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the batch to a few jobs for CI: it proves the harness
//! (including the journal-overhead comparison) runs end to end without
//! spending CI minutes on a real measurement.

use std::time::Instant;

use serde::Serialize;
use trustmeter_fleet::{
    AttackSpec, FleetConfig, FleetService, IngestConfig, JobSpec, Journal, RateCard,
    SamplingPolicy, Tenant, TenantId,
};
use trustmeter_workloads::Workload;

/// Workload scale for harness jobs (matches the criterion fleet bench).
const SCALE: f64 = 0.001;
/// Fleet seed (matches the criterion fleet bench).
const SEED: u64 = 0xf1ee7;

/// What one harness run measured.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Harness identifier.
    bench: &'static str,
    /// Durability mode: `off` (in-memory ledgers only) or `file`
    /// (write-ahead JSON-lines journal, flushed per append).
    journal: &'static str,
    /// Jobs streamed through the service.
    jobs: u64,
    /// Worker threads in the ingest pool.
    workers: usize,
    /// Workload scale factor per job.
    scale: f64,
    /// Audit sampling policy the run used.
    sampling: SamplingPolicy,
    /// End-to-end wall clock of submit → pump → finish, in seconds.
    wall_secs: f64,
    /// Jobs per wall-clock second.
    jobs_per_sec: f64,
    /// Inline reference replays the auditor performed (serial cost).
    audit_replays: u64,
    /// Runs audited with a worker-precomputed reference (parallel cost).
    audit_reference_hits: u64,
    /// Runs the audit flagged with at least one anomaly.
    flagged_runs: u64,
    /// Journal entries appended (0 with journaling off).
    journal_appends: u64,
    /// Journal bytes appended (0 with journaling off).
    journal_bytes: u64,
}

fn batch(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let tenant = TenantId((i % 4) as u32 + 1);
            let workload = Workload::ALL[(i % 4) as usize];
            if i % 4 == 0 {
                JobSpec::attacked(i, tenant, workload, SCALE, AttackSpec::Shell)
            } else {
                JobSpec::clean(i, tenant, workload, SCALE)
            }
        })
        .collect()
}

fn run(jobs: u64, workers: usize, journal: Option<Journal>) -> BenchReport {
    let journal_mode = if journal.is_some() { "file" } else { "off" };
    let config = FleetConfig::new(workers, SEED);
    let sampling = config.sampling;
    let mut service = FleetService::new(config);
    if let Some(journal) = journal {
        service = service.with_journal(journal);
    }
    for id in 1..=4u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("t{id}"),
            RateCard::per_cpu_hour(0.10),
        ));
    }
    let specs = batch(jobs);
    let start = Instant::now();
    let mut stream = service.stream(IngestConfig::new(workers).with_capacity(specs.len()));
    for spec in &specs {
        stream.submit(spec.clone()).expect("queue sized for batch");
        stream.pump();
    }
    let report = stream.finish();
    let wall_secs = start.elapsed().as_secs_f64();
    assert_eq!(report.records.len() as u64, jobs, "every job completed");
    let flagged_runs = report.flagged().count() as u64;
    let journal_stats = service.journal().map(|j| j.stats()).unwrap_or_default();
    BenchReport {
        bench: "fleet_stream_audited",
        journal: journal_mode,
        jobs,
        workers,
        scale: SCALE,
        sampling,
        wall_secs,
        jobs_per_sec: jobs as f64 / wall_secs.max(f64::EPSILON),
        audit_replays: service.auditor().replay_count(),
        audit_reference_hits: service.auditor().reference_hit_count(),
        flagged_runs,
        journal_appends: journal_stats.appends,
        journal_bytes: journal_stats.bytes,
    }
}

fn main() {
    let mut jobs: u64 = 128;
    let mut workers: usize = 4;
    let mut out = String::from("BENCH_fleet.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                jobs = 8;
                workers = 2;
            }
            "--jobs" => {
                let value = args.next().expect("--jobs requires a value");
                jobs = value.parse().expect("--jobs takes an integer");
            }
            "--workers" => {
                let value = args.next().expect("--workers requires a value");
                workers = value.parse().expect("--workers takes an integer");
                assert!(workers > 0, "--workers must be positive");
            }
            "--out" => {
                out = args.next().expect("--out requires a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: trustmeter-bench [--smoke] [--jobs N] [--workers N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(jobs > 0, "--jobs must be positive");

    let baseline = run(jobs, workers, None);

    let journal_path = std::env::temp_dir().join(format!(
        "trustmeter-bench-journal-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal_path);
    let journal = Journal::file(&journal_path).expect("open bench journal");
    let journaled = run(jobs, workers, Some(journal));
    let _ = std::fs::remove_file(&journal_path);

    let reports = vec![baseline, journaled];
    let json = serde_json::to_string_pretty(&reports).expect("serialize report");
    std::fs::write(&out, format!("{json}\n")).expect("write report file");
    for report in &reports {
        println!(
            "journal={}: {} jobs / {} workers: {:.3} s wall, {:.1} jobs/s, \
             {} replays, {} reference hits, {} appends ({} bytes)",
            report.journal,
            report.jobs,
            report.workers,
            report.wall_secs,
            report.jobs_per_sec,
            report.audit_replays,
            report.audit_reference_hits,
            report.journal_appends,
            report.journal_bytes,
        );
    }
    let overhead = (reports[1].wall_secs / reports[0].wall_secs.max(f64::EPSILON) - 1.0) * 100.0;
    println!("journal overhead: {overhead:+.1}% wall clock → {out}");
}
