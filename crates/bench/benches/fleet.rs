//! Fleet benchmarks: the worker-count sweep over the batch path, the
//! streaming ingest pipeline (submit → fair dispatch → sequence-numbered
//! merge), and the auditing and metrics stages on top of a fixed batch.

use criterion::{criterion_group, criterion_main, Criterion};
use trustmeter_fleet::{
    AttackSpec, BackpressurePolicy, Fleet, FleetConfig, FleetIngest, FleetService, IngestConfig,
    JobSpec, Journal, RateCard, SamplingPolicy, Tenant, TenantId,
};
use trustmeter_workloads::Workload;

const SCALE: f64 = 0.001;

fn batch(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let tenant = TenantId((i % 4) as u32 + 1);
            let workload = Workload::ALL[(i % 4) as usize];
            if i % 4 == 0 {
                JobSpec::attacked(i, tenant, workload, SCALE, AttackSpec::Shell)
            } else {
                JobSpec::clean(i, tenant, workload, SCALE)
            }
        })
        .collect()
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    let jobs = batch(32);
    for shards in [1usize, 2, 4, 8] {
        let fleet = Fleet::new(FleetConfig::new(shards, 0xf1ee7));
        group.bench_function(&format!("run_32_jobs_{shards}_shards"), |b| {
            b.iter(|| fleet.run(&jobs))
        });
    }

    // The streaming pipeline end to end: spawn the pool, submit the batch
    // job by job, drain, merge. Measures pool spin-up plus queue overhead
    // relative to the plain `Fleet::run` above.
    for workers in [1usize, 4] {
        group.bench_function(&format!("ingest_32_jobs_{workers}_workers"), |b| {
            b.iter(|| {
                let ingest = FleetIngest::start(
                    FleetConfig::new(workers, 0xf1ee7),
                    IngestConfig::new(workers).with_capacity(jobs.len()),
                );
                for job in &jobs {
                    ingest.submit(job.clone()).expect("queue fits batch");
                }
                ingest.finish().records.len()
            })
        });
    }

    // Streaming through the full service: submit + pump + finish, so the
    // ledger/auditor/metrics posting path is included.
    group.bench_function("service_stream_32_jobs_4_workers", |b| {
        b.iter(|| {
            let mut service = FleetService::new(FleetConfig::new(4, 0xf1ee7));
            let config = IngestConfig::new(4)
                .with_capacity(8)
                .with_backpressure(BackpressurePolicy::Reject);
            let mut stream = service.stream(config);
            let mut posted = 0;
            for job in &jobs {
                // Load-shedding loop: on QueueFull, pump completions until
                // a slot frees up.
                while stream.submit(job.clone()).is_err() {
                    posted += stream.pump();
                    std::thread::yield_now();
                }
                posted += stream.pump();
            }
            let report = stream.finish();
            (posted, report.verdicts.len())
        })
    });

    // The durability knob: the same full-service stream with every run
    // and receipt write-ahead journaled (in-memory sink, so this measures
    // the serialization overhead without filesystem noise; the
    // trustmeter-bench binary measures the file-backed mode).
    group.bench_function("service_stream_32_jobs_4_workers_journaled", |b| {
        b.iter(|| {
            let journal = Journal::in_memory();
            let mut service =
                FleetService::new(FleetConfig::new(4, 0xf1ee7)).with_journal(journal.clone());
            let mut stream = service.stream(IngestConfig::new(4).with_capacity(jobs.len()));
            for job in &jobs {
                stream.submit(job.clone()).expect("queue fits batch");
                stream.pump();
            }
            let report = stream.finish();
            (report.verdicts.len(), journal.stats().appends)
        })
    });

    // The audit-cost knob: spot-check every 4th job instead of all of
    // them. Workers then skip 3/4 of the reference computations.
    group.bench_function("service_stream_32_jobs_4_workers_sampled_every4", |b| {
        b.iter(|| {
            let config = FleetConfig::new(4, 0xf1ee7).with_sampling(SamplingPolicy::EveryNth(4));
            let mut service = FleetService::new(config);
            let mut stream = service.stream(IngestConfig::new(4).with_capacity(jobs.len()));
            for job in &jobs {
                stream.submit(job.clone()).expect("queue fits batch");
                stream.pump();
            }
            let report = stream.finish();
            report.verdicts.len()
        })
    });

    group.bench_function("service_process_32_jobs_4_shards", |b| {
        b.iter(|| {
            let mut service = FleetService::new(FleetConfig::new(4, 0xf1ee7));
            for id in 1..=4u32 {
                service.register(Tenant::new(
                    TenantId(id),
                    format!("t{id}"),
                    RateCard::per_cpu_hour(0.10),
                ));
            }
            let report = service.process(&jobs);
            (report.verdicts.len(), service.metrics_text().len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
