//! Crash recovery: kill a journaled stream mid-flight, then prove the
//! recovered service is bit-identical to a clean batch run of everything
//! the journal released.
//!
//! The demo walks the whole durability story:
//!
//! 1. a [`FleetService`] with a file-backed [`Journal`] streams a 36-job,
//!    3-tenant batch through a worker pool, write-ahead journaling every
//!    released run and its billing/audit receipts;
//! 2. the stream is dropped mid-flight — the "kill". Unreleased work is
//!    discarded: it was never journaled, so it was never billed;
//! 3. a torn half-line is appended to the journal file, the artifact a
//!    crash mid-append leaves behind;
//! 4. a fresh service (same config, same tenants — what a restarted
//!    process would build) replays the journal with
//!    [`FleetService::recover`]: the torn tail is dropped, every journaled
//!    receipt is cross-checked against the re-derived posting, and the
//!    recovered ledger/audit/metrics state equals a clean batch run over
//!    the released prefix — byte for byte on the metering exposition;
//! 5. the journal is compacted into a checkpoint plus tail and recovered
//!    again, with the same result.
//!
//! ```text
//! cargo run --release --example fleet_recover
//! ```

use trustmeter::prelude::*;

const SCALE: f64 = 0.002;
const JOBS: u64 = 36;
const SEED: u64 = 0xD15C;

fn jobs() -> Vec<JobSpec> {
    (0..JOBS)
        .map(|id| {
            let tenant = TenantId((id % 3) as u32 + 1);
            let workload = Workload::ALL[(id % 4) as usize];
            if tenant.0 == 2 {
                JobSpec::attacked(id, tenant, workload, SCALE, AttackSpec::Shell)
            } else {
                JobSpec::clean(id, tenant, workload, SCALE)
            }
        })
        .collect()
}

/// A service configured the way both the original process and the
/// restarted one would configure it.
fn build_service(journal: Option<Journal>) -> FleetService {
    let mut service = FleetService::new(FleetConfig::new(4, SEED));
    service.register(Tenant::new(
        TenantId(1),
        "acme",
        RateCard::per_cpu_hour(0.10),
    ));
    service.register(Tenant::new(
        TenantId(2),
        "shelled-inc",
        RateCard::per_cpu_hour(0.10),
    ));
    service.register(Tenant::new(
        TenantId(3),
        "initech",
        RateCard::per_cpu_hour(0.12),
    ));
    match journal {
        Some(journal) => service.with_journal(journal),
        None => service,
    }
}

/// The metering exposition: everything except the journal layer's
/// self-accounting series (a recovered process reads
/// `fleet_recoveries_total 1` where the original reads 0 — everything
/// else must match byte for byte).
fn metering_exposition(service: &FleetService) -> String {
    strip_self_accounting(&service.metrics_text())
}

fn main() {
    let path = std::env::temp_dir().join(format!(
        "trustmeter-fleet-recover-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // ---- 1. Stream with a write-ahead journal ---------------------------
    let journal = Journal::file(&path).expect("open journal file");
    let mut service = build_service(Some(journal));
    let mut stream = service.stream(IngestConfig::new(4).with_completion_watermark(8));
    for job in jobs() {
        stream.submit(job).expect("pipeline accepts until finish");
    }
    // Pump until at least a third of the batch is posted...
    while stream.verdicts().len() < (JOBS as usize) / 3 {
        stream.pump();
        std::thread::yield_now();
    }
    let posted = stream.verdicts().len();
    println!("streamed {posted}/{JOBS} jobs through the journaled service, then...");

    // ---- 2. ...the crash ------------------------------------------------
    drop(stream);
    drop(service);
    println!("  *** killed the stream mid-flight ***");

    // ---- 3. A torn final line, as a crash mid-append leaves -------------
    {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("reopen journal");
        file.write_all(br#"{"Run":{"job":{"id":999"#)
            .expect("append torn line");
    }

    // ---- 4. Recovery ----------------------------------------------------
    // The raw file shows the torn tail a crash mid-append leaves...
    let raw = std::fs::read_to_string(&path).expect("read journal file");
    let (_, tail) = parse_journal(&raw).expect("parse raw journal text");
    assert!(tail.is_truncated(), "the torn tail is detected");
    println!("torn tail detected in the raw file: {tail:?}");
    // ...and reopening the journal for append *repairs* it (truncates the
    // unterminated fragment), so the restarted process can keep appending
    // without merging new entries into the torn line.
    let journal = Journal::file(&path).expect("reopen journal file");
    let (entries, tail) = journal.entries().expect("parse journal");
    assert!(!tail.is_truncated(), "reopening repaired the torn tail");
    let released = entries.iter().filter(|e| e.label() == "run").count();
    println!(
        "journal holds {} entries for {released} released runs after repair",
        entries.len(),
    );

    let mut recovered = build_service(None);
    let report = recovered.recover(&entries).expect("replay journal");
    assert!(report.is_consistent(), "no receipt was tampered with");
    println!(
        "recovered {} runs ({} receipts cross-checked, {} unconfirmed)",
        report.runs_replayed, report.postings_confirmed, report.unconfirmed
    );

    // The released records form a submission-order prefix, so the ground
    // truth is a clean batch run over the first `released` jobs.
    let mut baseline = build_service(None);
    let baseline_report = baseline.process(&jobs()[..released]);
    assert_eq!(
        recovered.ledger(),
        &baseline_report.ledger,
        "recovered ledger == clean batch ledger"
    );
    assert_eq!(
        metering_exposition(&recovered),
        metering_exposition(&baseline),
        "recovered metering exposition == clean batch exposition"
    );
    for account in recovered.ledger().iter() {
        println!("  {account}");
    }
    println!("recovered state is bit-identical to a clean run of the released prefix\n");

    // ---- 5. Compaction --------------------------------------------------
    let fold = released / 2;
    let mut scratch = build_service(None);
    let compacted = compact(&entries, fold, &mut scratch).expect("compact journal");
    println!(
        "compacted {} entries into a {fold}-run checkpoint + {} tail entries",
        entries.len(),
        compacted.len() - 1
    );
    let mut from_checkpoint = build_service(None);
    from_checkpoint
        .recover(&compacted)
        .expect("replay compacted journal");
    assert_eq!(
        from_checkpoint.ledger(),
        &baseline_report.ledger,
        "recovery from the compacted journal is unchanged"
    );
    assert_eq!(
        metering_exposition(&from_checkpoint),
        metering_exposition(&baseline)
    );
    println!("recovery from the compacted journal reproduces the same state");

    let _ = std::fs::remove_file(&path);
}
