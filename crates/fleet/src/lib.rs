//! # trustmeter-fleet
//!
//! A deterministic, sharded, multi-tenant metering service over the
//! trustmeter workspace — the paper's single-run trust argument
//! ([`trustmeter_core`]) lifted to the scale where billing disputes
//! actually happen: many tenants submitting many jobs to a provider whose
//! accounting may or may not be honest.
//!
//! | Piece | What it does |
//! |-------|--------------|
//! | [`executor::Fleet`] | executes [`executor::JobSpec`]s; results are bit-identical for any worker count |
//! | [`ingest::FleetIngest`] | long-lived worker pool: bounded submission queue, backpressure, per-tenant fairness, sequence-numbered completion log |
//! | [`queue::FairQueue`] | the bounded per-tenant-fair queue under the pool |
//! | [`tenant::Ledger`] | aggregates per-run [`trustmeter_core::Invoice`]s and CPU time (billed vs TSC ground truth) into per-tenant accounts |
//! | [`auditor::Auditor`] | streams run records through the §VI trust workflow and raises per-tenant [`auditor::Anomaly`] verdicts |
//! | [`journal::Journal`] | append-only JSON-lines write-ahead log: runs, billing/audit receipts, checkpoints; crash recovery via [`FleetService::recover`] |
//! | [`metrics::MetricsRegistry`] | Prometheus-style text exposition of usage and anomaly counters |
//! | [`FleetService`] | wires it all together: submit → execute → bill → audit → journal → export |
//!
//! ## Example
//!
//! ```
//! use trustmeter_fleet::{
//!     AttackSpec, FleetConfig, FleetService, JobSpec, RateCard, Tenant, TenantId,
//! };
//! use trustmeter_workloads::Workload;
//!
//! let mut service = FleetService::new(FleetConfig::new(4, 2026));
//! service.register(Tenant::new(TenantId(1), "acme", RateCard::per_cpu_hour(0.10)));
//! service.register(Tenant::new(TenantId(2), "initech", RateCard::per_cpu_hour(0.08)));
//!
//! let jobs = vec![
//!     JobSpec::clean(0, TenantId(1), Workload::Pi, 0.002),
//!     JobSpec::attacked(1, TenantId(2), Workload::Pi, 0.002, AttackSpec::Shell),
//! ];
//! let report = service.process(&jobs);
//!
//! // The attacked tenant is billed above ground truth and flagged.
//! let honest = report.ledger.account(TenantId(1)).unwrap();
//! let victim = report.ledger.account(TenantId(2)).unwrap();
//! assert!(victim.overcharge_ratio() > honest.overcharge_ratio());
//! assert_eq!(victim.flagged_runs, 1);
//! assert!(service.metrics_text().contains("cpu_usage"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auditor;
pub mod evidence;
pub mod executor;
pub mod faults;
pub mod ingest;
pub mod journal;
pub mod metrics;
pub mod pool;
pub mod queue;
pub mod tenant;
pub mod trace;

pub use auditor::{
    Anomaly, AuditVerdict, Auditor, AuditorState, SamplingPolicy, TenantAuditSummary,
};
pub use evidence::{BlockHeader, ChainDigest, InclusionProof, ProofError, ProofStep, SealKey};
pub use executor::{
    quote_nonce, AttackSpec, Fleet, FleetConfig, JobId, JobSpec, ReferenceOutcome, RunRecord,
};
pub use faults::{
    FaultInjectingSink, FaultKind, FaultProbe, FaultSchedule, FaultStats, PlannedFault,
    PlannedWorkerFault, RetryPolicy, SupervisorPolicy, WorkerFaultKind, WorkerFaultSchedule,
};
pub use ingest::{
    BackpressurePolicy, BatchSubmitError, FleetHealth, FleetIngest, IngestConfig, IngestHandle,
    IngestOutcome, IngestStats, JobVerdict, SubmitError,
};
pub use journal::{
    compact, excluded_metric_families, metering_exposition, parse_journal, recovery_window,
    strip_families, strip_self_accounting, Checkpoint, CheckpointCadence, FileSink, FsyncPolicy,
    InvoicePosting, Journal, JournalEntry, JournalError, JournalSink, JournalStats,
    LedgerVerification, MemorySink, PoisonNotice, RecoveryError, RecoveryReport, SegmentConfig,
    SegmentedFileSink, SinkStats, TailStatus, LIVE_PIPELINE_FAMILIES, SELF_ACCOUNTING_FAMILIES,
};
pub use metrics::{CounterCell, MetricKind, MetricsRegistry};
pub use pool::{BufferPool, PoolStats};
pub use queue::FairQueue;
pub use tenant::{Ledger, Tenant, TenantDirectory, TenantId, TenantLedger};
pub use trace::{span_id, PipelineTracer, Span, SpanWall, Stage, StageObservation, TracerStats};

// Re-exported so fleet callers can price tenants without importing core.
pub use trustmeter_core::RateCard;

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

const AUDIT_REPLAYS_METRIC: &str = "fleet_audit_replays_total";
const AUDIT_REPLAYS_HELP: &str = "Inline clean-reference replays the auditor performed";
const AUDIT_REF_HITS_METRIC: &str = "fleet_audit_reference_hits_total";
const AUDIT_REF_HITS_HELP: &str = "Runs audited with a worker-precomputed reference";
const JOURNAL_APPENDS_METRIC: &str = "fleet_journal_appends_total";
const JOURNAL_APPENDS_HELP: &str = "Entries appended to the durability journal";
const JOURNAL_BYTES_METRIC: &str = "fleet_journal_bytes_total";
const JOURNAL_BYTES_HELP: &str = "Bytes appended to the durability journal (JSON lines)";
const JOURNAL_GROUP_COMMITS_METRIC: &str = "fleet_journal_group_commits_total";
const JOURNAL_GROUP_COMMITS_HELP: &str =
    "Batched journal commits (entry groups committed with one sink write)";
const JOURNAL_ROTATIONS_METRIC: &str = "fleet_journal_rotations_total";
const JOURNAL_ROTATIONS_HELP: &str = "Journal segment rotations";
const JOURNAL_FSYNCS_METRIC: &str = "fleet_journal_fsyncs_total";
const JOURNAL_FSYNCS_HELP: &str = "fsync calls issued by the journal sink";
const JOURNAL_RETIRED_METRIC: &str = "fleet_journal_segments_retired_total";
const JOURNAL_RETIRED_HELP: &str = "Journal segments retired as superseded by a checkpoint";
const JOURNAL_RETRIES_METRIC: &str = "fleet_journal_retries_total";
const JOURNAL_RETRIES_HELP: &str =
    "Failed journal commit attempts absorbed by the retry policy (transient I/O errors)";
const JOURNAL_FAILURES_METRIC: &str = "fleet_journal_failures_total";
const JOURNAL_FAILURES_HELP: &str =
    "Journal commits that exhausted the retry policy and quarantined the pipeline";
const QUARANTINED_METRIC: &str = "fleet_quarantined";
const QUARANTINED_HELP: &str =
    "Whether the ingest pipeline is quarantined after an unrecoverable journal failure (0/1)";
const LEDGER_SEALS_METRIC: &str = "fleet_ledger_seals_total";
const LEDGER_SEALS_HELP: &str = "Signed block headers sealed over rotated journal segments";
const PROOFS_EMITTED_METRIC: &str = "fleet_proofs_emitted_total";
const PROOFS_EMITTED_HELP: &str = "Inclusion proofs emitted by dispute resolution";
const CHAIN_VIOLATIONS_METRIC: &str = "fleet_chain_violations_total";
const CHAIN_VIOLATIONS_HELP: &str =
    "Evidence chain or seal violations detected during recovery or dispute";
const RECOVERIES_METRIC: &str = "fleet_recoveries_total";
const RECOVERIES_HELP: &str = "Journal recoveries performed by this service";
const STAGE_SECONDS_METRIC: &str = "fleet_stage_seconds";
const STAGE_SECONDS_HELP: &str = "Pipeline stage latency distribution, by stage";
const STAGE_SECONDS_BY_TENANT_METRIC: &str = "fleet_stage_seconds_by_tenant";
const STAGE_SECONDS_BY_TENANT_HELP: &str =
    "Pipeline stage latency distribution, by stage and tenant";
const OBSERVER_SPANS_METRIC: &str = "fleet_observer_spans_total";
const OBSERVER_SPANS_HELP: &str = "Spans recorded by the pipeline tracer";
const OBSERVER_DROPPED_METRIC: &str = "fleet_observer_spans_dropped_total";
const OBSERVER_DROPPED_HELP: &str = "Spans evicted from the tracer's full ring buffer";
const OBSERVER_OVERHEAD_METRIC: &str = "fleet_observer_overhead_seconds_total";
const OBSERVER_OVERHEAD_HELP: &str =
    "Time spent inside the observability layer itself (the cost of observing)";
const WORKER_RESTARTS_METRIC: &str = "fleet_worker_restarts_total";
const WORKER_RESTARTS_HELP: &str = "Workers respawned by the supervisor after a reap";
const JOBS_REASSIGNED_METRIC: &str = "fleet_jobs_reassigned_total";
const JOBS_REASSIGNED_HELP: &str =
    "Jobs reclaimed from dead, hung or lying workers and requeued for re-execution";
const POISON_JOBS_METRIC: &str = "fleet_poison_jobs_total";
const POISON_JOBS_HELP: &str = "Jobs retired as poison after killing the configured run of workers";
const WORKERS_LIVE_METRIC: &str = "fleet_workers_live";
const WORKERS_LIVE_HELP: &str = "Workers currently alive in the ingest pool";

/// Pre-registers the journal layer's self-accounting counters at zero
/// (existing values are kept — `counter_add` with a zero delta only
/// creates missing series), so the exposition is stable before the first
/// append and after a checkpoint restore strips them.
fn register_journal_metrics(metrics: &mut MetricsRegistry) {
    for (name, help) in [
        (JOURNAL_APPENDS_METRIC, JOURNAL_APPENDS_HELP),
        (JOURNAL_BYTES_METRIC, JOURNAL_BYTES_HELP),
        (JOURNAL_GROUP_COMMITS_METRIC, JOURNAL_GROUP_COMMITS_HELP),
        (JOURNAL_ROTATIONS_METRIC, JOURNAL_ROTATIONS_HELP),
        (JOURNAL_FSYNCS_METRIC, JOURNAL_FSYNCS_HELP),
        (JOURNAL_RETIRED_METRIC, JOURNAL_RETIRED_HELP),
        (JOURNAL_RETRIES_METRIC, JOURNAL_RETRIES_HELP),
        (JOURNAL_FAILURES_METRIC, JOURNAL_FAILURES_HELP),
        (LEDGER_SEALS_METRIC, LEDGER_SEALS_HELP),
        (PROOFS_EMITTED_METRIC, PROOFS_EMITTED_HELP),
        (CHAIN_VIOLATIONS_METRIC, CHAIN_VIOLATIONS_HELP),
        (RECOVERIES_METRIC, RECOVERIES_HELP),
    ] {
        metrics.counter_add(name, help, &[], 0.0);
    }
    // The quarantine flag is a gauge, pre-set healthy so "never
    // quarantined" and "series never existed" stay distinguishable.
    metrics.gauge_set(QUARANTINED_METRIC, QUARANTINED_HELP, &[], 0.0);
}

/// Pre-registers the observability families at zero: the per-stage
/// latency histograms (one zeroed series per [`Stage`]), the per-tenant
/// variant family (series appear as tenants send traffic), and the
/// tracer's self-accounting counters — so the exposition is stable with
/// tracing on or off, before any span is recorded, and after a
/// checkpoint restore strips them.
fn register_observability_metrics(metrics: &mut MetricsRegistry) {
    for stage in Stage::ALL {
        metrics.histogram_zero(
            STAGE_SECONDS_METRIC,
            STAGE_SECONDS_HELP,
            &metrics::LATENCY_BUCKETS,
            &[("stage", stage.label())],
        );
    }
    metrics.histogram_family(
        STAGE_SECONDS_BY_TENANT_METRIC,
        STAGE_SECONDS_BY_TENANT_HELP,
        &metrics::LATENCY_BUCKETS,
    );
    for (name, help) in [
        (OBSERVER_SPANS_METRIC, OBSERVER_SPANS_HELP),
        (OBSERVER_DROPPED_METRIC, OBSERVER_DROPPED_HELP),
        (OBSERVER_OVERHEAD_METRIC, OBSERVER_OVERHEAD_HELP),
    ] {
        metrics.counter_add(name, help, &[], 0.0);
    }
    register_supervision_metrics(metrics);
}

/// Pre-registers the worker-supervision families at zero: the restart,
/// reassignment and poison-job counters plus the live-worker gauge — so
/// a fleet that never loses a worker still exposes the families an
/// operator's alerts watch, and the exposition is stable after a
/// checkpoint restore strips them (they are [`LIVE_PIPELINE_FAMILIES`]).
fn register_supervision_metrics(metrics: &mut MetricsRegistry) {
    for (name, help) in [
        (WORKER_RESTARTS_METRIC, WORKER_RESTARTS_HELP),
        (JOBS_REASSIGNED_METRIC, JOBS_REASSIGNED_HELP),
        (POISON_JOBS_METRIC, POISON_JOBS_HELP),
    ] {
        metrics.counter_add(name, help, &[], 0.0);
    }
    metrics.gauge_set(WORKERS_LIVE_METRIC, WORKERS_LIVE_HELP, &[], 0.0);
}

/// Everything one processed batch produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Run records in submission order.
    pub records: Vec<RunRecord>,
    /// Audit verdicts, one per record, in the same order.
    pub verdicts: Vec<AuditVerdict>,
    /// The ledger state after posting the batch (cumulative across
    /// batches).
    pub ledger: Ledger,
}

impl FleetReport {
    /// Records whose audit found at least one anomaly.
    pub fn flagged(&self) -> impl Iterator<Item = (&RunRecord, &AuditVerdict)> {
        self.records
            .iter()
            .zip(self.verdicts.iter())
            .filter(|(_, verdict)| !verdict.is_clean())
    }
}

/// The assembled metering service: executor, ledger, auditor and metrics
/// behind one batch [`FleetService::process`] call or a streaming
/// [`FleetService::stream`] session.
///
/// # Examples
///
/// ```
/// use trustmeter_fleet::{FleetConfig, FleetService, JobSpec, RateCard, Tenant, TenantId};
/// use trustmeter_workloads::Workload;
///
/// let mut service = FleetService::new(FleetConfig::new(2, 7));
/// service.register(Tenant::new(TenantId(1), "acme", RateCard::per_cpu_second(0.01)));
/// let report = service.process(&[JobSpec::clean(0, TenantId(1), Workload::LoopO, 0.001)]);
/// assert_eq!(report.ledger.account(TenantId(1)).unwrap().runs, 1);
/// assert!(service.metrics_text().contains("fleet_jobs"));
/// ```
#[derive(Debug)]
pub struct FleetService {
    fleet: Fleet,
    directory: TenantDirectory,
    auditor: Auditor,
    ledger: Ledger,
    metrics: MetricsRegistry,
    /// Pricing applied to tenants that were never registered.
    default_rate_card: RateCard,
    /// The durability journal, when attached: runs, invoices and verdicts
    /// are appended write-ahead so the accounting state can be rebuilt
    /// with [`FleetService::recover`].
    journal: Option<Journal>,
    /// Journal counters already folded into the metrics exposition.
    journal_exported: JournalStats,
    /// The pipeline tracer, when attached (see
    /// [`FleetService::with_tracer`]): the service times its audit/post
    /// stages into it and drains its histogram cells into the
    /// `fleet_stage_seconds*` metrics.
    tracer: Option<PipelineTracer>,
    /// Tracer counters already folded into the metrics exposition.
    observer_exported: TracerStats,
    /// How often inline checkpoints are written (see
    /// [`FleetService::with_checkpoint_cadence`]).
    cadence: CheckpointCadence,
    /// Runs posted since the last inline checkpoint.
    runs_since_checkpoint: u64,
    /// Pre-resolved atomic counter handles for the per-record posting hot
    /// path (see [`MetricsRegistry::counter_cell`]). A process-local cache
    /// only — cleared whenever `metrics` is replaced wholesale (checkpoint
    /// restore), since handles are only meaningful on the registry that
    /// issued them.
    cells: ServiceCells,
}

/// Cached [`CounterCell`] handles for every counter the posting path
/// touches per record, resolved once instead of re-rendering label strings
/// and walking the registry maps on every job.
#[derive(Debug, Default)]
struct ServiceCells {
    /// (audit replays, reference cache hits).
    audit: Option<(CounterCell, CounterCell)>,
    tenants: BTreeMap<TenantId, TenantCells>,
}

#[derive(Debug, Clone, Copy)]
struct TenantCells {
    jobs: CounterCell,
    /// cpu_usage split: (user, billed), (system, billed), (user, truth),
    /// (system, truth) — the order [`FleetService::export_record`] posts.
    cpu: [CounterCell; 4],
    /// One per [`Anomaly::KINDS`] entry, in `KINDS` order.
    anomalies: [CounterCell; Anomaly::KINDS.len()],
}

impl FleetService {
    /// A service with the given executor configuration and a
    /// $0.10/CPU-hour default rate card. The auditor inherits the config's
    /// sampling policy and seed — so it verifies exactly the runs the
    /// workers precompute references for — and demands a valid attestation
    /// quote (signed with the fleet's key) before trusting any of them.
    pub fn new(config: FleetConfig) -> FleetService {
        let auditor = Auditor::new(config.machine.clone())
            .with_sampling(config.sampling, config.seed)
            .demand_quotes(config.seed);
        let mut metrics = MetricsRegistry::new();
        // Pre-register the audit cost counters at zero so the exposition
        // shows the replay cost even before (or without) any audits.
        metrics.counter_add(AUDIT_REPLAYS_METRIC, AUDIT_REPLAYS_HELP, &[], 0.0);
        metrics.counter_add(AUDIT_REF_HITS_METRIC, AUDIT_REF_HITS_HELP, &[], 0.0);
        // Likewise the journal/recovery series, so the exposition is
        // stable before the first append or recovery.
        register_journal_metrics(&mut metrics);
        // And the stage-latency histograms and observer self-accounting
        // counters, so tracing on/off never changes which series exist.
        register_observability_metrics(&mut metrics);
        FleetService {
            fleet: Fleet::new(config),
            directory: TenantDirectory::new(),
            auditor,
            ledger: Ledger::new(),
            metrics,
            default_rate_card: RateCard::per_cpu_hour(0.10),
            journal: None,
            journal_exported: JournalStats::default(),
            tracer: None,
            observer_exported: TracerStats::default(),
            cadence: CheckpointCadence::Never,
            runs_since_checkpoint: 0,
            cells: ServiceCells::default(),
        }
    }

    /// Attaches a [`PipelineTracer`]: the executor records execution
    /// spans, streaming sessions record queue-wait and journal-commit
    /// spans, and the service itself records audit and post spans — all
    /// drained into the `fleet_stage_seconds*` histograms and the
    /// `fleet_observer_*` self-accounting counters at each export point.
    /// Pure observation: every billing, audit and metering-exposition
    /// artifact stays bit-identical with tracing on or off.
    pub fn with_tracer(mut self, tracer: PipelineTracer) -> FleetService {
        self.observer_exported = tracer.stats();
        self.fleet.set_tracer(Some(tracer.clone()));
        self.tracer = Some(tracer);
        self
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&PipelineTracer> {
        self.tracer.as_ref()
    }

    /// Attaches a durability journal: from now on every released run and
    /// its billing/audit receipts are appended write-ahead (see the
    /// [`journal`] module docs). Counters already in the journal handle
    /// are not re-exported — the `fleet_journal_*` series count appends
    /// since attachment.
    pub fn with_journal(mut self, journal: Journal) -> FleetService {
        self.journal_exported = journal.stats();
        self.journal = Some(journal);
        self
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Enables automatic inline checkpoints: once at least `n` runs (for
    /// [`CheckpointCadence::every_n_runs`]) were posted since the last
    /// checkpoint, the service writes a [`Checkpoint`] entry at the next
    /// *safe point* — after a batch posting or at the end of a stream
    /// pump, when every journaled run has been posted — so recovery cost
    /// stays bounded without an offline [`journal::compact`] pass. On a
    /// segmented journal each checkpoint starts a fresh segment and
    /// retires the segments it supersedes; on other sinks, recover with
    /// [`FleetService::recover_latest`], which seeks to the newest
    /// checkpoint first.
    pub fn with_checkpoint_cadence(mut self, cadence: CheckpointCadence) -> FleetService {
        self.cadence = cadence;
        self
    }

    /// Replaces the auditor (e.g. to widen its tolerance). If the new
    /// auditor's sampling policy differs from the fleet's, records the
    /// workers did not precompute a reference for fall back to inline
    /// replays (correct, just slower).
    pub fn with_auditor(mut self, auditor: Auditor) -> FleetService {
        self.auditor = auditor;
        self
    }

    /// Replaces the rate card used for unregistered tenants.
    pub fn with_default_rate_card(mut self, card: RateCard) -> FleetService {
        self.default_rate_card = card;
        self
    }

    /// Registers a tenant and its pricing.
    pub fn register(&mut self, tenant: Tenant) {
        self.directory.register(tenant);
    }

    /// The tenant directory.
    pub fn directory(&self) -> &TenantDirectory {
        &self.directory
    }

    /// The cumulative ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The streaming auditor.
    pub fn auditor(&self) -> &Auditor {
        &self.auditor
    }

    /// Executes, bills, audits and meters one batch of jobs. With a
    /// journal attached, each posted record's Run/Invoice/Verdict triple
    /// is coalesced into **one** journal group commit (one sink write,
    /// one flush/fsync decision) before the next record posts — the
    /// batch-path analogue of the streaming release point. A crash
    /// before the commit loses only in-memory state that was never
    /// returned to the caller: never journaled ⇒ never released.
    pub fn process(&mut self, jobs: &[JobSpec]) -> FleetReport {
        let records = self.fleet.run(jobs);
        let mut verdicts = Vec::with_capacity(records.len());
        for record in &records {
            let post_started = self.tracer.as_ref().map(|_| std::time::Instant::now());
            let (verdict, posting) = self.post_record_core(record);
            if let (Some(tracer), Some(started)) = (&self.tracer, post_started) {
                tracer.record(
                    Stage::Post,
                    record.job.id,
                    record.job.tenant,
                    started.elapsed(),
                );
            }
            if let Some(journal) = &self.journal {
                let commit_started = self.tracer.as_ref().map(|_| std::time::Instant::now());
                journal.append_posting_or_die(record, &posting, &verdict);
                if let (Some(tracer), Some(started)) = (&self.tracer, commit_started) {
                    tracer.record_aggregate(
                        Stage::JournalCommit,
                        record.job.id,
                        record.job.tenant,
                        started.elapsed(),
                    );
                }
            }
            verdicts.push(verdict);
            self.runs_since_checkpoint += 1;
            // Each record is journaled and posted in step, so every point
            // between records is a safe checkpoint boundary.
            self.maybe_checkpoint();
        }
        self.export_gauges();
        self.export_journal_metrics();
        self.export_observer_metrics();
        FleetReport {
            records,
            verdicts,
            ledger: self.ledger.clone(),
        }
    }

    /// Opens a streaming session: a live [`FleetIngest`] worker pool whose
    /// completed records flow into this service's ledger, auditor and
    /// metrics in submission order. See [`FleetStream`].
    ///
    /// # Examples
    ///
    /// ```
    /// use trustmeter_fleet::{FleetConfig, FleetService, IngestConfig, JobSpec, TenantId};
    /// use trustmeter_workloads::Workload;
    ///
    /// let mut service = FleetService::new(FleetConfig::new(2, 42));
    /// let mut stream = service.stream(IngestConfig::new(2));
    /// for id in 0..4 {
    ///     stream
    ///         .submit(JobSpec::clean(id, TenantId(1), Workload::LoopO, 0.001))
    ///         .unwrap();
    /// }
    /// let report = stream.finish();
    /// assert_eq!(report.records.len(), 4);
    /// assert_eq!(report.ledger.account(TenantId(1)).unwrap().runs, 4);
    /// ```
    pub fn stream(&mut self, config: IngestConfig) -> FleetStream<'_> {
        let ingest = FleetIngest::over_journaled(self.fleet.clone(), config, self.journal.clone());
        FleetStream {
            service: self,
            ingest,
            records: Vec::new(),
            verdicts: Vec::new(),
            inflight_exported: Vec::new(),
            rejected_exported: 0,
            retries_exported: 0,
            failures_exported: 0,
            supervision_exported: (0, 0, 0),
        }
    }

    /// The shared posting tail of a stream's `pump` and `finish`: posts
    /// each released record (appending to the session's record/verdict
    /// logs), group-commits all the billing/audit receipts in one journal
    /// write, then checkpoints if the cadence is due — the end of a pump
    /// is a safe point, since every journaled run is posted by then.
    /// Drains `ready` in place (the caller keeps the emptied container so
    /// it can recycle its capacity into the release-path pool).
    fn post_ready(
        &mut self,
        ready: &mut Vec<RunRecord>,
        records: &mut Vec<RunRecord>,
        verdicts: &mut Vec<AuditVerdict>,
    ) -> usize {
        let posted = ready.len();
        if posted == 0 {
            return 0;
        }
        let mut receipts = self.journal.is_some().then(|| Vec::with_capacity(posted));
        let mut first_posted: Option<(JobId, TenantId)> = None;
        for record in ready.drain(..) {
            let post_started = self.tracer.as_ref().map(|_| std::time::Instant::now());
            let (verdict, posting) = self.post_record_core(&record);
            if let (Some(tracer), Some(started)) = (&self.tracer, post_started) {
                tracer.record(
                    Stage::Post,
                    record.job.id,
                    record.job.tenant,
                    started.elapsed(),
                );
            }
            first_posted.get_or_insert((record.job.id, record.job.tenant));
            if let Some(receipts) = &mut receipts {
                receipts.push((posting, verdict.clone()));
            }
            records.push(record);
            verdicts.push(verdict);
        }
        if let Some(receipts) = receipts {
            let commit_started = self.tracer.as_ref().map(|_| std::time::Instant::now());
            // Receipts are *enrichment*, not the billing record: recovery
            // re-derives every posting from the Run entry and only uses
            // journaled receipts to cross-check. So a failing sink here
            // degrades (the receipts count as `unconfirmed` on recovery,
            // and `fleet_journal_failures_total` ticks) instead of
            // panicking — the ingest side quarantines the pipeline at the
            // next Run commit anyway if the disk stays dead.
            let committed = self
                .journal
                .as_ref()
                .expect("receipts collected only with a journal")
                .append_receipts(&receipts);
            if committed.is_err() {
                self.metrics
                    .counter_add(JOURNAL_FAILURES_METRIC, JOURNAL_FAILURES_HELP, &[], 1.0);
            }
            if let (Some(tracer), Some(started), Some((job, tenant))) =
                (&self.tracer, commit_started, first_posted)
            {
                // One group commit covers every receipt of the pump;
                // attribute the span to the first posted record.
                tracer.record_aggregate(Stage::JournalCommit, job, tenant, started.elapsed());
            }
        }
        self.runs_since_checkpoint += posted as u64;
        self.maybe_checkpoint();
        posted
    }

    /// If a checkpoint is due and a journal is attached, writes an inline
    /// [`Checkpoint`] entry (rotating + retiring segments on a segmented
    /// sink). Callers invoke this only at safe points: every journaled
    /// run is posted, so the checkpoint folds the whole journal so far.
    fn maybe_checkpoint(&mut self) {
        if self.journal.is_none() || !self.cadence.due(self.runs_since_checkpoint) {
            return;
        }
        let checkpoint = self.checkpoint();
        // A checkpoint is an optimization (it bounds recovery cost), not
        // a durability obligation — everything it folds is already on the
        // journal. A failing sink skips the checkpoint and counts a
        // failure; `runs_since_checkpoint` is left alone so the cadence
        // retries at the next safe point.
        match self
            .journal
            .as_ref()
            .expect("journal checked above")
            .append_checkpoint(&checkpoint)
        {
            Ok(()) => self.runs_since_checkpoint = 0,
            Err(_) => {
                self.metrics
                    .counter_add(JOURNAL_FAILURES_METRIC, JOURNAL_FAILURES_HELP, &[], 1.0);
            }
        }
    }

    /// Bills, audits and meters one completed run (the shared core of the
    /// batch, streaming and recovery paths). Journaling is the caller's
    /// job: live paths coalesce the receipts into group commits, recovery
    /// replays must not re-journal at all.
    fn post_record_core(&mut self, record: &RunRecord) -> (AuditVerdict, InvoicePosting) {
        let freq = self.fleet.config().machine.frequency;
        let card = self
            .directory
            .get(record.job.tenant)
            .map(|t| t.rate_card)
            .unwrap_or(self.default_rate_card);
        let outcome = &record.outcome;
        let (billed_invoice, truth_invoice) = self.ledger.post_run(
            record.job.tenant,
            &card,
            freq,
            record.job.id,
            outcome.victim_billed,
            outcome.victim_truth,
            outcome.victim_process_aware,
        );
        let replays_before = self.auditor.replay_count();
        let hits_before = self.auditor.reference_hit_count();
        let audit_started = self.tracer.as_ref().map(|_| std::time::Instant::now());
        let verdict = self.auditor.observe(record);
        if let (Some(tracer), Some(started)) = (&self.tracer, audit_started) {
            tracer.record(
                Stage::Audit,
                record.job.id,
                record.job.tenant,
                started.elapsed(),
            );
        }
        let (replay_cell, hit_cell) = match self.cells.audit {
            Some(cells) => cells,
            None => {
                let cells = (
                    self.metrics
                        .counter_cell(AUDIT_REPLAYS_METRIC, AUDIT_REPLAYS_HELP, &[]),
                    self.metrics
                        .counter_cell(AUDIT_REF_HITS_METRIC, AUDIT_REF_HITS_HELP, &[]),
                );
                self.cells.audit = Some(cells);
                cells
            }
        };
        self.metrics.cell_add(
            replay_cell,
            (self.auditor.replay_count() - replays_before) as f64,
        );
        self.metrics.cell_add(
            hit_cell,
            (self.auditor.reference_hit_count() - hits_before) as f64,
        );
        if !verdict.is_clean() {
            self.ledger.account_mut(record.job.tenant).flag();
        }
        self.export_record(record, &verdict);
        let posting = InvoicePosting {
            tenant: record.job.tenant,
            job: record.job.id,
            billed: billed_invoice,
            truth: truth_invoice,
        };
        (verdict, posting)
    }

    /// Resolves (once per tenant) the cached cell handles for every counter
    /// the posting path touches. Resolution also pre-registers each anomaly
    /// kind's series at zero, so the exposition distinguishes "zero
    /// anomalies" from "series never existed" exactly as the locked path
    /// did when it posted explicit zero deltas per record.
    fn tenant_cells(&mut self, tenant: TenantId) -> TenantCells {
        if let Some(cells) = self.cells.tenants.get(&tenant) {
            return *cells;
        }
        let label = tenant.to_string();
        let jobs = self.metrics.counter_cell(
            "fleet_jobs",
            "Jobs executed by the fleet",
            &[("tenant", &label)],
        );
        let usage_help = "CPU seconds attributed to tenant jobs";
        let cpu = [
            ("user", "billed"),
            ("system", "billed"),
            ("user", "truth"),
            ("system", "truth"),
        ]
        .map(|(state, source)| {
            self.metrics.counter_cell(
                "cpu_usage",
                usage_help,
                &[("tenant", &label), ("state", state), ("source", source)],
            )
        });
        let anomaly_help = "Audit anomalies raised, by kind";
        let anomalies = Anomaly::KINDS.map(|kind| {
            self.metrics.counter_cell(
                "fleet_anomalies",
                anomaly_help,
                &[("tenant", &label), ("kind", kind)],
            )
        });
        let cells = TenantCells {
            jobs,
            cpu,
            anomalies,
        };
        self.cells.tenants.insert(tenant, cells);
        cells
    }

    fn export_record(&mut self, record: &RunRecord, verdict: &AuditVerdict) {
        let outcome = &record.outcome;
        let cells = self.tenant_cells(record.job.tenant);
        self.metrics.cell_add(cells.jobs, 1.0);
        for (cell, secs) in cells.cpu.iter().zip([
            outcome.billed_utime_secs(),
            outcome.billed_stime_secs(),
            outcome.truth_total_secs() - outcome.truth_stime_secs(),
            outcome.truth_stime_secs(),
        ]) {
            self.metrics.cell_add(*cell, secs);
        }
        for anomaly in &verdict.anomalies {
            let slot = Anomaly::KINDS
                .iter()
                .position(|kind| *kind == anomaly.kind())
                .expect("anomaly kind listed in Anomaly::KINDS");
            self.metrics.cell_add(cells.anomalies[slot], 1.0);
        }
    }

    fn export_gauges(&mut self) {
        self.metrics.gauge_set(
            "fleet_tenants",
            "Tenants with at least one posted run",
            &[],
            self.ledger.len() as f64,
        );
        let ledgers: Vec<(String, f64, f64)> = self
            .ledger
            .iter()
            .map(|a| (a.tenant.to_string(), a.billed_charge, a.truth_charge))
            .collect();
        for (tenant, billed, truth) in ledgers {
            self.metrics.gauge_set(
                "tenant_charge",
                "Cumulative charge per tenant, by source",
                &[("tenant", &tenant), ("source", "billed")],
                billed,
            );
            self.metrics.gauge_set(
                "tenant_charge",
                "Cumulative charge per tenant, by source",
                &[("tenant", &tenant), ("source", "truth")],
                truth,
            );
        }
    }

    /// The Prometheus-style text dump of every metric.
    pub fn metrics_text(&self) -> String {
        self.metrics.render()
    }

    /// The metrics registry itself, for quantile and counter queries
    /// (e.g. [`MetricsRegistry::histogram_quantile`] over the
    /// `fleet_stage_seconds` series).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Drains the tracer's aggregated histogram cells into the
    /// `fleet_stage_seconds*` metrics and folds its span/overhead
    /// counters into the exposition (delta since the last export). A
    /// no-op without a tracer — the zero-registered families stay zero,
    /// so tracing on/off never changes which series exist.
    fn export_observer_metrics(&mut self) {
        let Some(tracer) = &self.tracer else { return };
        for observation in tracer.take_observations() {
            let stage = observation.stage.label();
            match observation.tenant {
                None => self.metrics.histogram_add(
                    STAGE_SECONDS_METRIC,
                    STAGE_SECONDS_HELP,
                    &metrics::LATENCY_BUCKETS,
                    &[("stage", stage)],
                    &observation.counts,
                    observation.sum_secs,
                    observation.count,
                ),
                Some(tenant) => self.metrics.histogram_add(
                    STAGE_SECONDS_BY_TENANT_METRIC,
                    STAGE_SECONDS_BY_TENANT_HELP,
                    &metrics::LATENCY_BUCKETS,
                    &[("stage", stage), ("tenant", &tenant.to_string())],
                    &observation.counts,
                    observation.sum_secs,
                    observation.count,
                ),
            }
        }
        let stats = tracer.stats();
        let exported = self.observer_exported;
        for (name, help, now, before) in [
            (
                OBSERVER_SPANS_METRIC,
                OBSERVER_SPANS_HELP,
                stats.spans_recorded,
                exported.spans_recorded,
            ),
            (
                OBSERVER_DROPPED_METRIC,
                OBSERVER_DROPPED_HELP,
                stats.spans_dropped,
                exported.spans_dropped,
            ),
        ] {
            self.metrics
                .counter_add(name, help, &[], now.saturating_sub(before) as f64);
        }
        self.metrics.counter_add(
            OBSERVER_OVERHEAD_METRIC,
            OBSERVER_OVERHEAD_HELP,
            &[],
            stats.overhead_nanos.saturating_sub(exported.overhead_nanos) as f64 / 1e9,
        );
        self.observer_exported = stats;
    }

    /// A snapshot of the service's accounting state — ledger, audit
    /// summaries and cost counters, metering metrics — as a journal
    /// [`Checkpoint`] entry. [`journal::compact`] folds a journal prefix
    /// into one of these so recovery does not replay from genesis, and a
    /// [`CheckpointCadence`] writes them inline.
    ///
    /// The metrics snapshot carries the *metering* families only: the
    /// journal's self-accounting counters and the live ingest
    /// gauges/counters ([`SELF_ACCOUNTING_FAMILIES`],
    /// [`LIVE_PIPELINE_FAMILIES`]) describe the process that wrote the
    /// checkpoint — a restarted process starts both at zero, and the
    /// live-pipeline series are timing-dependent, which would poison the
    /// bit-identical recovery contract.
    pub fn checkpoint(&self) -> Checkpoint {
        let excluded: Vec<&str> = SELF_ACCOUNTING_FAMILIES
            .iter()
            .chain(LIVE_PIPELINE_FAMILIES.iter())
            .copied()
            .collect();
        Checkpoint {
            runs: self.ledger.iter().map(|a| a.runs).sum(),
            ledger: self.ledger.clone(),
            audit: self.auditor.state(),
            metrics: self.metrics.without_families(&excluded),
        }
    }

    /// Replays a journal into this service, rebuilding bit-identical
    /// ledger, audit-summary and metrics state — including after a crash
    /// that left `Run` entries without their receipts, and after
    /// [`journal::compact`]ion.
    ///
    /// The service must be *fresh* and configured like the journal's
    /// origin: same [`FleetConfig`] (seed, machine, sampling) and the same
    /// tenant registrations, exactly as a restarted process would
    /// construct it. Each `Run` entry is re-posted through the normal
    /// billing/audit path (precomputed references and quotes make this
    /// cheap and deterministic); journaled `Invoice`/`Verdict` receipts
    /// are cross-checked against the re-derived postings, so a journal
    /// edited after the fact is reported in
    /// [`RecoveryReport::mismatches`]. An attached journal is **not**
    /// written to during recovery.
    ///
    /// Recovery is **strict** about duplicated evidence: a job id that
    /// appears in more than one `Run` entry (or in a replayed entry *and*
    /// the applied checkpoint) is a hard
    /// [`RecoveryError::ChainViolation`], because on a chained journal a
    /// byte-identical duplicate can only be copy-pasted — a legitimate
    /// resubmission carries a fresh `prev` link and fresh receipts. Use
    /// [`FleetService::recover_lenient`] to replay such a journal anyway
    /// and inspect [`RecoveryReport::duplicate_runs`].
    ///
    /// # Errors
    /// [`RecoveryError`] if the entry sequence is not a valid write-ahead
    /// journal (a receipt without its run, a checkpoint after replayed
    /// runs, a duplicated run).
    pub fn recover(&mut self, entries: &[JournalEntry]) -> Result<RecoveryReport, RecoveryError> {
        let result = self.replay_with(entries, true);
        if matches!(result, Err(RecoveryError::ChainViolation(_))) {
            self.metrics
                .counter_add(CHAIN_VIOLATIONS_METRIC, CHAIN_VIOLATIONS_HELP, &[], 1.0);
        }
        let report = result?;
        self.metrics
            .counter_add(RECOVERIES_METRIC, RECOVERIES_HELP, &[], 1.0);
        Ok(report)
    }

    /// [`FleetService::recover`] without the duplicate-evidence hard
    /// error: duplicated runs are replayed faithfully (the ledger posts
    /// again, exactly as the PR-5 recovery did) and every duplicate is
    /// surfaced in [`RecoveryReport::duplicate_runs`] for the operator to
    /// vet. For journals whose duplication is *known* to be legitimate
    /// job-id reuse across batches.
    ///
    /// # Errors
    /// [`RecoveryError`] as for [`FleetService::recover`], minus the
    /// duplicate check.
    pub fn recover_lenient(
        &mut self,
        entries: &[JournalEntry],
    ) -> Result<RecoveryReport, RecoveryError> {
        let report = self.replay_with(entries, false)?;
        self.metrics
            .counter_add(RECOVERIES_METRIC, RECOVERIES_HELP, &[], 1.0);
        Ok(report)
    }

    /// [`FleetService::recover`] from the **latest** checkpoint onward
    /// ([`journal::recovery_window`]): the entry point for journals a
    /// [`CheckpointCadence`] wrote inline checkpoints into. A retired
    /// segment directory already starts at its newest checkpoint, so for
    /// those this is equivalent to plain `recover`; for unretired
    /// journals it bounds replay cost to the entries after the last
    /// checkpoint instead of rejecting the mid-stream checkpoint.
    ///
    /// # Errors
    /// [`RecoveryError`] as for [`FleetService::recover`].
    pub fn recover_latest(
        &mut self,
        entries: &[JournalEntry],
    ) -> Result<RecoveryReport, RecoveryError> {
        self.recover(journal::recovery_window(entries))
    }

    /// Settles a billing dispute for `job` from **sealed evidence alone**
    /// — the paper's verifiable-metering endpoint. The service seals the
    /// journal head (so the newest entries are covered by a signed block
    /// header), asks the journal for the job's [`InclusionProof`]s, and
    /// verifies every one under the fleet seed's [`SealKey`]: no journal
    /// replay, no trust in the live in-memory ledger. The resolution pins
    /// the billed/truth invoices and the audit verdict to the exact
    /// chained lines that justify them; the proofs travel with it, so the
    /// disputing tenant can re-run [`InclusionProof::verify`] themselves.
    ///
    /// Increments `fleet_proofs_emitted_total` per emitted proof, and
    /// `fleet_chain_violations_total` if any proof fails to verify.
    ///
    /// # Errors
    /// [`DisputeError::NoJournal`] without an attached journal;
    /// [`DisputeError::NoEvidence`] if no sealed entry names the job;
    /// [`DisputeError::Journal`] / [`DisputeError::Proof`] if the
    /// evidence cannot be produced or does not verify.
    pub fn dispute(&mut self, job: JobId) -> Result<DisputeResolution, DisputeError> {
        let Some(journal) = &self.journal else {
            return Err(DisputeError::NoJournal);
        };
        journal.seal().map_err(DisputeError::Journal)?;
        let proofs = journal.prove(job).map_err(DisputeError::Journal)?;
        if proofs.is_empty() {
            return Err(DisputeError::NoEvidence(job));
        }
        let key = SealKey::from_seed(self.fleet.config().seed);
        let mut invoice = None;
        let mut verdict = None;
        let mut runs = 0u64;
        for proof in &proofs {
            match proof.verify(&key) {
                // Same-id resubmissions are legal; the newest sealed
                // receipts are the settled ones.
                Ok(JournalEntry::Invoice(posting)) => invoice = Some(posting),
                Ok(JournalEntry::Verdict(v)) => verdict = Some(v),
                Ok(JournalEntry::Run(_)) => runs += 1,
                // Sealed Accepted entries prove the submission was
                // durable, but carry no billing to settle.
                Ok(JournalEntry::Accepted(_)) => {}
                Ok(JournalEntry::Checkpoint(_)) => {}
                // A sealed poison verdict is the settled outcome for a
                // job the fleet retired: nothing billed, nothing owed.
                Ok(JournalEntry::Poisoned(_)) => {}
                Err(e) => {
                    self.metrics.counter_add(
                        CHAIN_VIOLATIONS_METRIC,
                        CHAIN_VIOLATIONS_HELP,
                        &[],
                        1.0,
                    );
                    return Err(DisputeError::Proof(e));
                }
            }
        }
        self.metrics.counter_add(
            PROOFS_EMITTED_METRIC,
            PROOFS_EMITTED_HELP,
            &[],
            proofs.len() as f64,
        );
        // Sealing the head may have rotated a segment; fold the new seal
        // count into the exposition.
        self.export_journal_metrics();
        Ok(DisputeResolution {
            job,
            runs,
            invoice,
            verdict,
            proofs,
        })
    }

    /// The replay core of [`FleetService::recover`], without counting a
    /// recovery — [`journal::compact`] uses it to fold a prefix into a
    /// checkpoint. Lenient about duplicates: compaction must be able to
    /// fold whatever recovery (strict or lenient) would replay.
    pub(crate) fn replay(
        &mut self,
        entries: &[JournalEntry],
    ) -> Result<RecoveryReport, RecoveryError> {
        self.replay_with(entries, false)
    }

    fn replay_with(
        &mut self,
        entries: &[JournalEntry],
        strict: bool,
    ) -> Result<RecoveryReport, RecoveryError> {
        // Detach any journal for the duration: a replay must never append
        // to the log it is replaying.
        let journal = self.journal.take();
        let result = self.replay_inner(entries, strict);
        self.journal = journal;
        result
    }

    fn replay_inner(
        &mut self,
        entries: &[JournalEntry],
        strict: bool,
    ) -> Result<RecoveryReport, RecoveryError> {
        struct Pending {
            invoice: InvoicePosting,
            verdict: AuditVerdict,
            invoice_seen: bool,
            verdict_seen: bool,
        }
        // One FIFO queue of outstanding postings per job id, not a single
        // slot: two same-id runs released back-to-back (legal — e.g. both
        // completing within one pump window) journal Run,Run,…receipts…,
        // and their receipts pair with the runs in release order.
        let mut pending: std::collections::BTreeMap<JobId, std::collections::VecDeque<Pending>> =
            std::collections::BTreeMap::new();
        // Every job already posted (replayed here, or folded into an
        // applied checkpoint — the ledger's invoices carry the ids).
        // Job-id reuse across batches is legal at runtime, so a repeated
        // Run entry is replayed faithfully; it is also indistinguishable
        // from a copy-pasted (double-billing) entry, so every duplicate is
        // surfaced in the report for the operator to vet.
        let mut posted: std::collections::BTreeSet<JobId> = std::collections::BTreeSet::new();
        // Accepted-but-unreleased specs, in submission order: an
        // `Accepted` entry is retired by the `Run` entry that releases
        // the same job; whatever survives the replay was accepted and
        // never released — the restarted service resubmits exactly those
        // (see [`RecoveryReport::unreleased`]).
        let mut accepted_pending: Vec<JobSpec> = Vec::new();
        let mut report = RecoveryReport::default();
        for entry in entries {
            match entry {
                JournalEntry::Accepted(spec) => {
                    accepted_pending.push(spec.clone());
                    report.accepted += 1;
                }
                JournalEntry::Checkpoint(checkpoint) => {
                    if report.runs_replayed > 0 {
                        return Err(RecoveryError::MisplacedCheckpoint);
                    }
                    self.ledger = checkpoint.ledger.clone();
                    self.auditor.restore(checkpoint.audit.clone());
                    self.metrics = checkpoint.metrics.clone();
                    // The replaced registry invalidates every cached cell
                    // handle; the posting path re-resolves on next use.
                    self.cells = ServiceCells::default();
                    // Checkpoints exclude the self-accounting and
                    // observability families (they described the dead
                    // process); re-register them at zero so the
                    // exposition stays stable.
                    register_journal_metrics(&mut self.metrics);
                    register_observability_metrics(&mut self.metrics);
                    report.checkpoint_runs = checkpoint.runs;
                    posted = self
                        .ledger
                        .iter()
                        .flat_map(|account| account.invoices.iter().map(|(job, _, _)| *job))
                        .collect();
                }
                JournalEntry::Run(record) => {
                    // The release retires the oldest matching Accepted
                    // entry (same-id resubmissions pair in order).
                    if let Some(pos) = accepted_pending
                        .iter()
                        .position(|spec| spec.id == record.job.id)
                    {
                        accepted_pending.remove(pos);
                    }
                    if !posted.insert(record.job.id) {
                        if strict {
                            // On a chained journal a byte-identical repeat
                            // is duplicated evidence, not a resubmission.
                            return Err(RecoveryError::ChainViolation(record.job.id));
                        }
                        report.duplicate_runs.push(record.job.id);
                    }
                    let (verdict, invoice) = self.post_record_core(record);
                    pending
                        .entry(record.job.id)
                        .or_default()
                        .push_back(Pending {
                            invoice,
                            verdict,
                            invoice_seen: false,
                            verdict_seen: false,
                        });
                    report.runs_replayed += 1;
                }
                JournalEntry::Invoice(posting) => {
                    let Some(queue) = pending.get_mut(&posting.job) else {
                        return Err(RecoveryError::OrphanPosting(posting.job));
                    };
                    let Some(pend) = queue.iter_mut().find(|p| !p.invoice_seen) else {
                        return Err(RecoveryError::OrphanPosting(posting.job));
                    };
                    if pend.invoice == *posting {
                        report.postings_confirmed += 1;
                    } else {
                        report.mismatches.push(posting.job);
                    }
                    pend.invoice_seen = true;
                    while queue
                        .front()
                        .is_some_and(|p| p.invoice_seen && p.verdict_seen)
                    {
                        queue.pop_front();
                    }
                    if queue.is_empty() {
                        pending.remove(&posting.job);
                    }
                }
                JournalEntry::Poisoned(notice) => {
                    // A poison verdict resolves its job without posting:
                    // retire the oldest matching Accepted entry so the job
                    // is not reported as interrupted work to resubmit.
                    if let Some(pos) = accepted_pending
                        .iter()
                        .position(|spec| spec.id == notice.spec.id)
                    {
                        accepted_pending.remove(pos);
                    }
                    report.poisoned += 1;
                }
                JournalEntry::Verdict(verdict) => {
                    let Some(queue) = pending.get_mut(&verdict.job) else {
                        return Err(RecoveryError::OrphanPosting(verdict.job));
                    };
                    let Some(pend) = queue.iter_mut().find(|p| !p.verdict_seen) else {
                        return Err(RecoveryError::OrphanPosting(verdict.job));
                    };
                    if pend.verdict == *verdict {
                        report.postings_confirmed += 1;
                    } else {
                        report.mismatches.push(verdict.job);
                    }
                    pend.verdict_seen = true;
                    while queue
                        .front()
                        .is_some_and(|p| p.invoice_seen && p.verdict_seen)
                    {
                        queue.pop_front();
                    }
                    if queue.is_empty() {
                        pending.remove(&verdict.job);
                    }
                }
            }
        }
        report.unconfirmed = pending.values().map(|queue| queue.len() as u64).sum();
        report.unreleased = accepted_pending;
        // Cadence bookkeeping: everything after the last checkpoint was
        // replayed here, so that is how many runs the next inline
        // checkpoint is due after.
        self.runs_since_checkpoint = report.runs_replayed;
        self.export_gauges();
        Ok(report)
    }

    /// Folds the attached journal's append/byte/commit/rotation/fsync
    /// counters into the metrics exposition (delta since the last
    /// export).
    fn export_journal_metrics(&mut self) {
        let Some(journal) = &self.journal else { return };
        let stats = journal.stats();
        let exported = self.journal_exported;
        for (name, help, now, before) in [
            (
                JOURNAL_APPENDS_METRIC,
                JOURNAL_APPENDS_HELP,
                stats.appends,
                exported.appends,
            ),
            (
                JOURNAL_BYTES_METRIC,
                JOURNAL_BYTES_HELP,
                stats.bytes,
                exported.bytes,
            ),
            (
                JOURNAL_GROUP_COMMITS_METRIC,
                JOURNAL_GROUP_COMMITS_HELP,
                stats.group_commits,
                exported.group_commits,
            ),
            (
                JOURNAL_ROTATIONS_METRIC,
                JOURNAL_ROTATIONS_HELP,
                stats.rotations,
                exported.rotations,
            ),
            (
                JOURNAL_FSYNCS_METRIC,
                JOURNAL_FSYNCS_HELP,
                stats.fsyncs,
                exported.fsyncs,
            ),
            (
                JOURNAL_RETIRED_METRIC,
                JOURNAL_RETIRED_HELP,
                stats.segments_retired,
                exported.segments_retired,
            ),
            (
                LEDGER_SEALS_METRIC,
                LEDGER_SEALS_HELP,
                stats.seals,
                exported.seals,
            ),
        ] {
            self.metrics
                .counter_add(name, help, &[], now.saturating_sub(before) as f64);
        }
        self.journal_exported = stats;
    }

    /// Exports the live ingest gauges and the rejected-submissions counter
    /// delta (shared by mid-stream pumps and the final drain). `stale`
    /// lists tenants whose inflight series were previously exported and
    /// must be zeroed if absent from the current snapshot (gauge series
    /// persist once created).
    fn export_ingest_metrics(
        &mut self,
        stats: &IngestStats,
        stale: &[TenantId],
        rejected_delta: u64,
        retries_delta: u64,
        failures_delta: u64,
        supervision_deltas: (u64, u64, u64),
    ) {
        let (restarts_delta, reassigned_delta, poisoned_delta) = supervision_deltas;
        self.metrics.gauge_set(
            "fleet_queue_depth",
            "Jobs queued and not yet dispatched to a worker",
            &[],
            stats.queued as f64,
        );
        let inflight_help = "Jobs currently executing, per tenant";
        for tenant in stale {
            if !stats.inflight.contains_key(tenant) {
                self.metrics.gauge_set(
                    "fleet_inflight",
                    inflight_help,
                    &[("tenant", &tenant.to_string())],
                    0.0,
                );
            }
        }
        for (tenant, count) in &stats.inflight {
            self.metrics.gauge_set(
                "fleet_inflight",
                inflight_help,
                &[("tenant", &tenant.to_string())],
                *count as f64,
            );
        }
        self.metrics.counter_add(
            "fleet_submissions_rejected",
            "Submissions rejected because the queue was full",
            &[],
            rejected_delta as f64,
        );
        self.metrics.gauge_set(
            QUARANTINED_METRIC,
            QUARANTINED_HELP,
            &[],
            if stats.quarantined { 1.0 } else { 0.0 },
        );
        self.metrics.counter_add(
            JOURNAL_RETRIES_METRIC,
            JOURNAL_RETRIES_HELP,
            &[],
            retries_delta as f64,
        );
        self.metrics.counter_add(
            JOURNAL_FAILURES_METRIC,
            JOURNAL_FAILURES_HELP,
            &[],
            failures_delta as f64,
        );
        self.metrics.counter_add(
            WORKER_RESTARTS_METRIC,
            WORKER_RESTARTS_HELP,
            &[],
            restarts_delta as f64,
        );
        self.metrics.counter_add(
            JOBS_REASSIGNED_METRIC,
            JOBS_REASSIGNED_HELP,
            &[],
            reassigned_delta as f64,
        );
        self.metrics.counter_add(
            POISON_JOBS_METRIC,
            POISON_JOBS_HELP,
            &[],
            poisoned_delta as f64,
        );
        self.metrics.gauge_set(
            WORKERS_LIVE_METRIC,
            WORKERS_LIVE_HELP,
            &[],
            stats.workers as f64,
        );
        let pool_help = "Release-path record buffer pool, by event \
                         (idle_capacity counts elements, the rest buffers)";
        for (event, value) in [
            ("acquired", stats.pool.acquired),
            ("reused", stats.pool.reused),
            ("returned", stats.pool.returned),
            ("idle", stats.pool.idle),
            ("idle_capacity", stats.pool.idle_capacity),
        ] {
            self.metrics.gauge_set(
                "fleet_pool_buffers",
                pool_help,
                &[("event", event)],
                value as f64,
            );
        }
    }
}

/// Why a [`FleetService::dispute`] could not be settled.
#[derive(Debug)]
pub enum DisputeError {
    /// The service has no attached journal, so there is no evidence.
    NoJournal,
    /// No sealed journal entry names the disputed job.
    NoEvidence(JobId),
    /// The journal could not produce the evidence (I/O, seal or chain
    /// trouble on the sink side).
    Journal(JournalError),
    /// An inclusion proof failed to verify — the evidence itself is bad.
    Proof(ProofError),
}

impl fmt::Display for DisputeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoJournal => write!(f, "dispute requires an attached journal"),
            Self::NoEvidence(job) => {
                write!(f, "no sealed evidence names job {job}")
            }
            Self::Journal(e) => write!(f, "journal could not produce evidence: {e}"),
            Self::Proof(e) => write!(f, "evidence failed verification: {e}"),
        }
    }
}

impl std::error::Error for DisputeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Journal(e) => Some(e),
            Self::Proof(e) => Some(e),
            _ => None,
        }
    }
}

/// The settled outcome of a [`FleetService::dispute`]: the job's billed
/// invoice and audit verdict, each pinned to a verified [`InclusionProof`]
/// drawn from the sealed evidence ledger. Everything here was checked
/// against a signed block header — nothing was read from the live
/// in-memory ledger, and nothing required replaying the journal.
#[derive(Debug)]
pub struct DisputeResolution {
    /// The disputed job.
    pub job: JobId,
    /// Sealed `Run` entries naming the job (resubmissions count once each).
    pub runs: u64,
    /// The newest sealed invoice posting for the job, if any was sealed.
    pub invoice: Option<InvoicePosting>,
    /// The newest sealed audit verdict for the job, if any was sealed.
    pub verdict: Option<AuditVerdict>,
    /// The verified proofs themselves, for independent re-checking.
    pub proofs: Vec<InclusionProof>,
}

impl DisputeResolution {
    /// Billed-over-truth ratio from the sealed invoice — the paper's
    /// headline overcharge figure. `None` without a sealed invoice or
    /// with a zero-cost truth run.
    #[must_use]
    pub fn overcharge_ratio(&self) -> Option<f64> {
        let posting = self.invoice.as_ref()?;
        if posting.truth.total > 0.0 {
            Some(posting.billed.total / posting.truth.total)
        } else {
            None
        }
    }

    /// Whether the sealed audit verdict flagged the run as anomalous.
    #[must_use]
    pub fn flagged(&self) -> bool {
        self.verdict.as_ref().is_some_and(|v| !v.is_clean())
    }
}

/// A live streaming session over a [`FleetService`].
///
/// Obtained from [`FleetService::stream`]. Jobs submitted through
/// [`FleetStream::submit`] (or an [`IngestHandle`] from
/// [`FleetStream::handle`], one per tenant thread) are executed by the
/// session's worker pool; [`FleetStream::pump`] posts completed records to
/// the service's ledger, auditor and metrics **in submission order**, and
/// [`FleetStream::finish`] drains the pipeline and returns the same
/// [`FleetReport`] the batch path would have produced — bit-identical for
/// any worker count, because seeds derive from job ids and the completion
/// log merges by submission sequence.
#[derive(Debug)]
pub struct FleetStream<'a> {
    service: &'a mut FleetService,
    ingest: FleetIngest,
    records: Vec<RunRecord>,
    verdicts: Vec<AuditVerdict>,
    /// Tenants whose `fleet_inflight` gauge has been exported; their series
    /// must be re-zeroed when they leave the inflight snapshot.
    inflight_exported: Vec<TenantId>,
    /// Rejected-submission count already added to the metrics counter.
    rejected_exported: u64,
    /// Journal retry count already added to the metrics counter.
    retries_exported: u64,
    /// Journal failure count already added to the metrics counter.
    failures_exported: u64,
    /// Supervision counters (worker restarts, reassigned jobs, poison
    /// jobs) already added to the metrics counters.
    supervision_exported: (u64, u64, u64),
}

impl FleetStream<'_> {
    /// Submits one job; returns its submission sequence number.
    ///
    /// # Errors
    /// [`SubmitError::QueueFull`] under [`BackpressurePolicy::Reject`] with
    /// a full queue; [`SubmitError::ShutDown`] once the session is
    /// finishing.
    pub fn submit(&self, job: JobSpec) -> Result<u64, SubmitError> {
        self.ingest.submit(job)
    }

    /// Submits a batch of jobs through the batched hot path (one submit
    /// guard hold, one grouped `Accepted` journal commit, one state-lock
    /// hold and one worker wake per admitted slice). The resulting report,
    /// ledger, journal bytes and metering exposition are bit-identical to
    /// submitting the same jobs one at a time.
    ///
    /// # Errors
    /// [`BatchSubmitError`] carrying the accepted prefix (those jobs are in
    /// the pipeline and will run) and the [`SubmitError`] that stopped the
    /// rest.
    pub fn submit_all(&self, jobs: &[JobSpec]) -> Result<Vec<u64>, BatchSubmitError> {
        self.ingest.submit_all(jobs)
    }

    /// Resizes the session's worker pool (clamped to at least one worker).
    /// Growing spawns immediately; shrinking retires surplus workers at
    /// their next dispatch boundary. Reports stay bit-identical across any
    /// scaling schedule — worker count never affects release order.
    pub fn scale_workers(&mut self, workers: usize) {
        self.ingest.scale_to(workers);
    }

    /// Sets a tenant's fairness weight (deficit round robin): how many jobs
    /// its lane may release per rotation turn. Weight 1 is the default
    /// round-robin share.
    pub fn set_tenant_weight(&self, tenant: TenantId, weight: u32) {
        self.ingest.set_tenant_weight(tenant, weight);
    }

    /// A cloneable handle for submitting jobs from other threads while this
    /// session pumps completions.
    pub fn handle(&self) -> IngestHandle {
        self.ingest.handle()
    }

    /// A snapshot of the pipeline counters and gauges.
    pub fn stats(&self) -> IngestStats {
        self.ingest.stats()
    }

    /// Pauses dispatch (running jobs finish; queued jobs wait).
    pub fn pause(&self) {
        self.ingest.pause()
    }

    /// Resumes dispatch after [`FleetStream::pause`].
    pub fn resume(&self) {
        self.ingest.resume()
    }

    /// Durability health: quarantine flag, retry/failure counters, the
    /// stalled-record backlog and the last journal error. The session
    /// keeps executing while quarantined — only the billing boundary
    /// (release → post) is closed — so poll this to decide when a
    /// [`FleetStream::resume_with_sink`] failover is needed.
    pub fn health(&self) -> FleetHealth {
        self.ingest.health()
    }

    /// Fails the journal over to a **fresh** sink and lifts the
    /// quarantine, then pumps the drained backlog into the service.
    ///
    /// The service-level failover writes a leading [`Checkpoint`] of the
    /// current accounting state into the new sink before anything else:
    /// a checkpoint is the one entry [`parse_journal`] allows to adopt a
    /// foreign chain anchor, so the new sink replays **standalone** with
    /// [`FleetService::recover_latest`] — no splicing with the dead
    /// sink's lines required. After the checkpoint, the pending
    /// accepted-but-unreleased specs are re-journaled (the new sink is
    /// self-contained for submission-side recovery too), the stalled
    /// ready prefix is drained and posted, and normal operation resumes.
    ///
    /// # Errors
    /// [`JournalError`] if the session has no journal or the replacement
    /// sink fails while writing the leading checkpoint or the accepted
    /// backlog — the pipeline then *stays* quarantined.
    pub fn resume_with_sink(&mut self, sink: Box<dyn JournalSink>) -> Result<(), JournalError> {
        let Some(journal) = &self.service.journal else {
            return Err(JournalError::Io(
                "stream session has no journal to fail over".to_string(),
            ));
        };
        journal.fail_over(sink);
        let checkpoint = self.service.checkpoint();
        journal.append_checkpoint(&checkpoint)?;
        self.service.runs_since_checkpoint = 0;
        self.ingest.resume_after_failover()?;
        self.pump();
        Ok(())
    }

    /// Verdicts posted so far, in submission order.
    pub fn verdicts(&self) -> &[AuditVerdict] {
        &self.verdicts
    }

    /// Poison verdicts released so far: jobs the supervisor retired after
    /// they killed [`SupervisorPolicy::max_job_attempts`] workers in a
    /// row. Each was journaled as a chained [`JournalEntry::Poisoned`]
    /// entry when released; nothing was billed for it.
    pub fn poisoned(&self) -> Vec<PoisonNotice> {
        self.ingest.poisoned()
    }

    /// The dispatch order so far — which job each worker popped, in pop
    /// order. With a multi-tenant backlog, consecutive entries round-robin
    /// across tenants (the observable fairness record).
    pub fn dispatch_log(&self) -> Vec<(JobId, TenantId)> {
        self.ingest.dispatch_log()
    }

    /// Posts every completed record that extends the contiguous submission-
    /// order prefix to the service (ledger → auditor → metrics), updates the
    /// ingest gauges, and returns how many records were posted.
    ///
    /// With a journal attached, the pump's billing/audit receipts are
    /// coalesced into **one** group commit after the posting loop (the
    /// `Run` entries were already committed as a batch when `take_ready`
    /// released the records), and the end of the pump is a checkpoint
    /// safe point: every journaled run is posted, so an inline
    /// [`Checkpoint`] written here folds the whole journal so far.
    pub fn pump(&mut self) -> usize {
        let mut ready = self.ingest.take_ready();
        let posted = self
            .service
            .post_ready(&mut ready, &mut self.records, &mut self.verdicts);
        // Hand the emptied batch container back for the next release.
        self.ingest.recycle(ready);
        let stats = self.ingest.stats();
        self.export_stream_metrics(&stats);
        posted
    }

    fn export_stream_metrics(&mut self, stats: &IngestStats) {
        let delta = stats.rejected - self.rejected_exported;
        let retries_delta = stats.retries - self.retries_exported;
        let failures_delta = stats.journal_failures - self.failures_exported;
        let supervision_deltas = (
            stats.worker_restarts - self.supervision_exported.0,
            stats.reassigned - self.supervision_exported.1,
            stats.poisoned - self.supervision_exported.2,
        );
        self.service.export_ingest_metrics(
            stats,
            &self.inflight_exported,
            delta,
            retries_delta,
            failures_delta,
            supervision_deltas,
        );
        self.service.export_journal_metrics();
        self.service.export_observer_metrics();
        self.rejected_exported = stats.rejected;
        self.retries_exported = stats.retries;
        self.failures_exported = stats.journal_failures;
        self.supervision_exported = (stats.worker_restarts, stats.reassigned, stats.poisoned);
        for tenant in stats.inflight.keys() {
            if !self.inflight_exported.contains(tenant) {
                self.inflight_exported.push(*tenant);
            }
        }
    }

    /// Drains the pipeline (graceful shutdown: every accepted job still
    /// runs), posts the remaining records, and returns the cumulative
    /// report — bit-identical to [`FleetService::process`] over the same
    /// jobs for any worker count.
    pub fn finish(mut self) -> FleetReport {
        self.pump();
        let FleetStream {
            service,
            ingest,
            mut records,
            mut verdicts,
            mut inflight_exported,
            rejected_exported,
            retries_exported,
            failures_exported,
            supervision_exported,
        } = self;
        let mut outcome = ingest.finish();
        service.post_ready(&mut outcome.records, &mut records, &mut verdicts);
        // Final gauges are deterministic: the queue is empty, nothing is
        // inflight, and every tenant that was ever inflight now has a
        // ledger account — so zero the inflight series for all of them.
        for account in service.ledger.iter() {
            if !inflight_exported.contains(&account.tenant) {
                inflight_exported.push(account.tenant);
            }
        }
        service.export_ingest_metrics(
            &outcome.stats,
            &inflight_exported,
            outcome.stats.rejected - rejected_exported,
            outcome.stats.retries - retries_exported,
            outcome.stats.journal_failures - failures_exported,
            (
                outcome.stats.worker_restarts - supervision_exported.0,
                outcome.stats.reassigned - supervision_exported.1,
                outcome.stats.poisoned - supervision_exported.2,
            ),
        );
        service.export_journal_metrics();
        service.export_observer_metrics();
        service.export_gauges();
        FleetReport {
            records,
            verdicts,
            ledger: service.ledger.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustmeter_workloads::Workload;

    #[test]
    fn service_bills_audits_and_meters_one_batch() {
        let mut service = FleetService::new(FleetConfig::new(2, 9));
        service.register(Tenant::new(
            TenantId(1),
            "acme",
            RateCard::per_cpu_second(0.01),
        ));
        let jobs = vec![
            JobSpec::clean(0, TenantId(1), Workload::LoopO, 0.001),
            JobSpec::attacked(1, TenantId(1), Workload::LoopO, 0.001, AttackSpec::Shell),
        ];
        let report = service.process(&jobs);
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.verdicts.len(), 2);
        assert!(report.verdicts[0].is_clean());
        assert!(!report.verdicts[1].is_clean());
        assert_eq!(report.flagged().count(), 1);
        let account = report.ledger.account(TenantId(1)).unwrap();
        assert_eq!(account.runs, 2);
        assert_eq!(account.flagged_runs, 1);
        let text = service.metrics_text();
        assert!(text.contains("cpu_usage{"));
        assert!(text.contains("fleet_anomalies{"));
        assert!(text.contains("# TYPE fleet_jobs counter"));
    }

    #[test]
    fn unregistered_tenants_use_default_pricing() {
        let mut service = FleetService::new(FleetConfig::new(1, 5))
            .with_default_rate_card(RateCard::per_cpu_second(1.0));
        let jobs = vec![JobSpec::clean(0, TenantId(99), Workload::Pi, 0.001)];
        let report = service.process(&jobs);
        let account = report.ledger.account(TenantId(99)).unwrap();
        assert!(account.billed_charge > 0.0);
    }
}
