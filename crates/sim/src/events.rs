//! Deterministic discrete-event queue.
//!
//! The simulated kernel schedules future work (timer interrupts, device
//! interrupts, I/O completions, sleep expirations) on an [`EventQueue`].
//! Events fire in non-decreasing time order; events scheduled for the same
//! instant fire in insertion order, which keeps whole simulations
//! deterministic and therefore reproducible.

use crate::time::Cycles;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled to fire at a virtual instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<T> {
    /// The instant (in cycles) at which the event fires.
    pub at: Cycles,
    /// Monotonic sequence number used to break ties deterministically.
    pub seq: u64,
    /// The caller-supplied payload.
    pub payload: T,
}

/// Internal heap entry; `BinaryHeap` is a max-heap so ordering is reversed.
#[derive(Debug)]
struct HeapEntry<T> {
    at: Cycles,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: earliest time (then lowest seq) is the "greatest" entry.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list keyed by virtual time.
///
/// # Example
///
/// ```
/// use trustmeter_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles(30), "timer");
/// q.schedule(Cycles(10), "irq");
/// q.schedule(Cycles(10), "second-irq");
///
/// assert_eq!(q.peek_time(), Some(Cycles(10)));
/// assert_eq!(q.pop().unwrap().payload, "irq");
/// assert_eq!(q.pop().unwrap().payload, "second-irq");
/// assert_eq!(q.pop().unwrap().payload, "timer");
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_seq: u64,
    popped: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `payload` to fire at instant `at` and returns its sequence
    /// number (usable for debugging and cancellation bookkeeping by callers).
    pub fn schedule(&mut self, at: Cycles, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { at, seq, payload });
        seq
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.at)
    }

    /// The earliest pending event's instant and payload, without removing
    /// it (used by the kernel to coalesce idle timer ticks).
    pub fn peek(&self) -> Option<(Cycles, &T)> {
        self.heap.peek().map(|e| (e.at, &e.payload))
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Event<T>> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            Event {
                at: e.at,
                seq: e.seq,
                payload: e.payload,
            }
        })
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: Cycles) -> Option<Event<T>> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events ever popped.
    pub fn popped_count(&self) -> u64 {
        self.popped
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Removes all pending events matching the predicate, returning how many
    /// were removed. This is `O(n log n)` and intended for rare cancellation
    /// paths (e.g. killing a sleeping process).
    pub fn cancel_where<F: FnMut(&T) -> bool>(&mut self, mut pred: F) -> usize {
        let old = std::mem::take(&mut self.heap).into_vec();
        let before = old.len();
        for entry in old {
            if !pred(&entry.payload) {
                self.heap.push(entry);
            }
        }
        before - self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(100), 1u32);
        q.schedule(Cycles(50), 2);
        q.schedule(Cycles(75), 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10u32 {
            q.schedule(Cycles(42), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), "a");
        q.schedule(Cycles(20), "b");
        assert_eq!(q.pop_due(Cycles(5)), None);
        assert_eq!(q.pop_due(Cycles(10)).unwrap().payload, "a");
        assert_eq!(q.pop_due(Cycles(15)), None);
        assert_eq!(q.pop_due(Cycles(30)).unwrap().payload, "b");
    }

    #[test]
    fn peek_exposes_earliest_payload() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(20), "later");
        q.schedule(Cycles(10), "first");
        assert_eq!(q.peek(), Some((Cycles(10), &"first")));
        q.pop();
        assert_eq!(q.peek(), Some((Cycles(20), &"later")));
        q.pop();
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn counts_and_clear() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(1), ());
        q.schedule(Cycles(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        assert_eq!(q.popped_count(), 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_where_removes_matching() {
        let mut q = EventQueue::new();
        for i in 0..10u32 {
            q.schedule(Cycles(i as u64), i);
        }
        let removed = q.cancel_where(|v| v % 2 == 0);
        assert_eq!(removed, 5);
        let rest: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(rest, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
