//! The streaming auditor: per-run trust verdicts, per-tenant anomaly
//! rollups.
//!
//! The paper's §VI trust workflow — replay the job on a reference platform,
//! compare the provider's bill against the replay's fine-grained ground
//! truth, check the measured code closure and the execution witness — is
//! applied here to a *stream* of fleet [`RunRecord`]s. References come
//! from three sources, in order of preference:
//!
//! 1. **Precomputed** — the fleet worker that ran the job also computed the
//!    clean reference (it already held the spec and seed), attached to the
//!    record as a [`crate::executor::ReferenceOutcome`]. This moves the
//!    replay cost onto the parallel worker pool. Only sound while the
//!    worker pool is the auditor's own infrastructure — for records from
//!    an untrusted executor, see [`Auditor::distrust_references`].
//! 2. **Memoized** — an inline replay already performed for the same
//!    `(workload, scale, seed, nice)` template.
//! 3. **Inline replay** — a clean run of the job on the auditor's own
//!    machine model, the §VI fallback. Precomputed references are
//!    bit-identical to inline replays because both are the same
//!    deterministic simulation of the same seed on the same machine.
//!
//! A [`SamplingPolicy`] decides *which* runs are verified at all — the
//! paper's §VI observes that verification cost is the limiting factor at
//! scale, and spot-checking trades detection latency for throughput.
//! Every observed run yields an [`AuditVerdict`]; tenants accumulate an
//! [`TenantAuditSummary`] of how often and how badly they were overcharged.
//!
//! Verdicts are receipts, not just telemetry: the service journals each
//! one next to its run and invoice, where the evidence ledger chains and
//! seals it. A later [`crate::FleetService::dispute`] pins the verdict to
//! an inclusion proof, so "the audit flagged this run" is a claim a
//! tenant can verify from sealed evidence rather than take on trust.

use crate::executor::{JobId, ReferenceOutcome, RunRecord};
use crate::tenant::TenantId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use trustmeter_core::{
    AttestationKey, Digest, ImageKind, MeasuredImage, OverchargeReport, QuoteError,
    SourceIntegrityReport, TrustAssessment, Verdict,
};
use trustmeter_experiments::Scenario;
use trustmeter_kernel::KernelConfig;
use trustmeter_sim::SimRng;

/// Which runs the auditor verifies (the paper's §VI cost/latency knob).
///
/// Every decision is a pure function of the fleet seed and the job id, so
/// the streamed and batch paths — and any worker count — agree on exactly
/// which runs are audited.
///
/// # Examples
///
/// ```
/// use trustmeter_fleet::{JobId, SamplingPolicy};
///
/// assert!(SamplingPolicy::Always.should_audit(7, JobId(3)));
/// assert!(!SamplingPolicy::Never.should_audit(7, JobId(3)));
/// assert!(SamplingPolicy::EveryNth(4).should_audit(7, JobId(8)));
/// assert!(!SamplingPolicy::EveryNth(4).should_audit(7, JobId(9)));
/// // Probabilistic decisions are deterministic for a fixed fleet seed.
/// let p = SamplingPolicy::Probability(0.5);
/// assert_eq!(p.should_audit(7, JobId(3)), p.should_audit(7, JobId(3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SamplingPolicy {
    /// Audit every run (maximal detection, maximal cost).
    #[default]
    Always,
    /// Audit nothing (metering without verification).
    Never,
    /// Audit jobs whose id is a multiple of `n` (`n <= 1` audits all).
    EveryNth(u64),
    /// Audit each run with probability `p`, decided by the deterministic
    /// fleet RNG keyed on the fleet seed and the job id.
    Probability(f64),
}

impl SamplingPolicy {
    /// Whether the job is audited under `fleet_seed`. Deterministic:
    /// depends only on the fleet seed and the job id, never on arrival
    /// order or worker assignment.
    pub fn should_audit(&self, fleet_seed: u64, job: JobId) -> bool {
        match *self {
            SamplingPolicy::Always => true,
            SamplingPolicy::Never => false,
            SamplingPolicy::EveryNth(n) => n <= 1 || job.0.is_multiple_of(n),
            // A different mixing constant than `Fleet::job_seed` so audit
            // decisions do not correlate with kernel seeds.
            SamplingPolicy::Probability(p) => {
                SimRng::seed_from(fleet_seed ^ job.0.wrapping_mul(0xA076_1D64_78BD_642F))
                    .gen_bool(p)
            }
        }
    }
}

/// One detected irregularity in a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Anomaly {
    /// The bill exceeds the reference ground truth beyond tolerance.
    Overbilled(OverchargeReport),
    /// Images ran in the victim's context that the reference never loaded.
    UnexpectedImages(Vec<String>),
    /// The measurement log is inconsistent with the reference replay even
    /// though no injected image explains it: expected images are missing,
    /// or the reported PCR diverges despite an identical closure.
    MeasurementMismatch {
        /// Reference images absent from the run's measurement log.
        missing: Vec<String>,
        /// Whether the reported PCR matched the reference replay's.
        pcr_consistent: bool,
    },
    /// The execution witness diverged from the reference replay.
    WitnessMismatch {
        /// Witness digest of the reference replay.
        expected: Digest,
        /// Witness digest the provider reported.
        observed: Digest,
    },
    /// The run hit the simulation safety horizon instead of finishing.
    HorizonHit,
    /// The record's attestation quote is missing, does not verify under
    /// the platform key, or does not match the reported outcome. The
    /// precomputed reference was not trusted for this run: the auditor
    /// fell back to its own inline replay (§III-B — a report is only
    /// authentic if the TPM-signed quote over it verifies).
    QuoteMismatch {
        /// Why the quote was rejected: `missing`, `bad-signature`,
        /// `nonce-mismatch` or `outcome-mismatch`.
        reason: String,
    },
}

impl Anomaly {
    /// Short stable label (used as a metrics `kind` label).
    pub fn kind(&self) -> &'static str {
        match self {
            Anomaly::Overbilled(_) => "overbilled",
            Anomaly::UnexpectedImages(_) => "unexpected-images",
            Anomaly::MeasurementMismatch { .. } => "measurement-mismatch",
            Anomaly::WitnessMismatch { .. } => "witness-mismatch",
            Anomaly::HorizonHit => "horizon-hit",
            Anomaly::QuoteMismatch { .. } => "quote-mismatch",
        }
    }

    /// Every anomaly kind label; `FleetService` pre-registers a zeroed
    /// `fleet_anomalies` series per kind so the exposition distinguishes
    /// "zero anomalies" from "kind never exported".
    pub const KINDS: [&'static str; 6] = [
        "overbilled",
        "unexpected-images",
        "measurement-mismatch",
        "witness-mismatch",
        "horizon-hit",
        "quote-mismatch",
    ];
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anomaly::Overbilled(report) => write!(f, "overbilled: {report}"),
            Anomaly::UnexpectedImages(images) => {
                write!(f, "unexpected images: {}", images.join(", "))
            }
            Anomaly::MeasurementMismatch {
                missing,
                pcr_consistent,
            } => write!(
                f,
                "measurement mismatch: {} missing image(s), pcr {}",
                missing.len(),
                if *pcr_consistent {
                    "consistent"
                } else {
                    "MISMATCH"
                }
            ),
            Anomaly::WitnessMismatch { .. } => f.write_str("witness mismatch"),
            Anomaly::HorizonHit => f.write_str("hit simulation horizon"),
            Anomaly::QuoteMismatch { reason } => write!(f, "quote mismatch: {reason}"),
        }
    }
}

/// The auditor's finding for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditVerdict {
    /// The audited job.
    pub job: crate::executor::JobId,
    /// Whose run it was.
    pub tenant: TenantId,
    /// The three-property assessment of §VI-B.
    pub assessment: TrustAssessment,
    /// Everything irregular about the run (empty = trustworthy).
    pub anomalies: Vec<Anomaly>,
    /// Whether the run was actually verified. `false` when the
    /// [`SamplingPolicy`] skipped it — the verdict then asserts nothing
    /// (the assessment is vacuously clean).
    pub audited: bool,
}

impl AuditVerdict {
    /// Whether the run passed the audit cleanly.
    pub fn is_clean(&self) -> bool {
        self.anomalies.is_empty()
    }
}

/// A tenant's accumulated audit history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantAuditSummary {
    /// Whose summary this is.
    pub tenant: TenantId,
    /// Runs observed.
    pub runs: u64,
    /// Runs the sampling policy skipped (observed but not verified).
    pub skipped_runs: u64,
    /// Runs with at least one anomaly.
    pub flagged_runs: u64,
    /// Count per anomaly kind label.
    pub anomaly_counts: BTreeMap<String, u64>,
    /// Total seconds overbilled beyond the reference ground truth.
    pub overcharge_secs: f64,
}

/// The auditor's replayable state: everything [`Auditor`] accumulates that
/// must survive a restart (the reference memo cache is deliberately
/// excluded — it is a performance memo that rebuilds on demand).
///
/// Snapshot with [`Auditor::state`], restore with [`Auditor::restore`];
/// journal checkpoints embed one so recovery can resume from a compacted
/// prefix.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AuditorState {
    /// Per-tenant audit rollups.
    pub summaries: BTreeMap<TenantId, TenantAuditSummary>,
    /// Inline reference replays performed.
    pub replays: u64,
    /// Records audited with a worker-precomputed reference.
    pub reference_hits: u64,
}

impl TenantAuditSummary {
    fn new(tenant: TenantId) -> TenantAuditSummary {
        TenantAuditSummary {
            tenant,
            runs: 0,
            skipped_runs: 0,
            flagged_runs: 0,
            anomaly_counts: BTreeMap::new(),
            overcharge_secs: 0.0,
        }
    }

    /// Total anomalies across kinds.
    pub fn total_anomalies(&self) -> u64 {
        self.anomaly_counts.values().sum()
    }
}

/// Streaming auditor over fleet run records.
///
/// # Examples
///
/// ```
/// use trustmeter_fleet::{AttackSpec, Auditor, Fleet, FleetConfig, JobSpec, TenantId};
/// use trustmeter_workloads::Workload;
///
/// let fleet = Fleet::new(FleetConfig::new(1, 42));
/// let mut auditor = Auditor::new(fleet.config().machine.clone());
///
/// // A clean run audits clean; a shell-injected run is flagged.
/// let clean = fleet.run_one(&JobSpec::clean(0, TenantId(1), Workload::LoopO, 0.001));
/// assert!(auditor.observe(&clean).is_clean());
/// let attacked = fleet.run_one(&JobSpec::attacked(
///     1, TenantId(1), Workload::LoopO, 0.001, AttackSpec::Shell,
/// ));
/// assert!(!auditor.observe(&attacked).is_clean());
/// assert_eq!(auditor.summary(TenantId(1)).unwrap().flagged_runs, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Auditor {
    machine: KernelConfig,
    tolerance: f64,
    sampling: SamplingPolicy,
    fleet_seed: u64,
    /// Whether record-embedded references are accepted. `true` on the
    /// fleet path, where the worker pool is the auditor's own trusted
    /// infrastructure; set to `false` for records from an untrusted
    /// executor, whose producer could forge the reference.
    trust_references: bool,
    /// When set, a record must carry a valid quote under this key before
    /// its precomputed reference is trusted (see
    /// [`Auditor::demand_quotes`]).
    attestation: Option<AttestationKey>,
    reference_cache: BTreeMap<ReferenceKey, ReferenceOutcome>,
    summaries: BTreeMap<TenantId, TenantAuditSummary>,
    /// Inline reference replays performed (cache misses without a
    /// precomputed reference) — the previously invisible audit cost.
    replays: u64,
    /// Records audited with a worker-precomputed reference.
    reference_hits: u64,
}

type ReferenceKey = (&'static str, u64, u64, i8);

impl Auditor {
    /// Relative billed-vs-truth tolerance below which a run is considered
    /// consistent. Wider than [`OverchargeReport::DEFAULT_TOLERANCE`]
    /// because at fleet scales a run is a few hundred milliseconds, where
    /// honest tick accounting already wobbles by a few jiffies (up to ~2%
    /// across the paper's four workloads); 5% keeps a 3x margin over that
    /// while still catching the weakest runtime attack (the scheduling
    /// attacker nets only ~7% against the multi-threaded Brute victim).
    pub const DEFAULT_TOLERANCE: f64 = 0.05;

    /// An auditor replaying references on `machine`, auditing every run.
    pub fn new(machine: KernelConfig) -> Auditor {
        Auditor {
            machine,
            tolerance: Self::DEFAULT_TOLERANCE,
            sampling: SamplingPolicy::Always,
            fleet_seed: 0,
            trust_references: true,
            attestation: None,
            reference_cache: BTreeMap::new(),
            summaries: BTreeMap::new(),
            replays: 0,
            reference_hits: 0,
        }
    }

    /// Ignores record-embedded references and performs every audit against
    /// the auditor's own (memoized) inline replay.
    ///
    /// The default (trusting) mode is correct on the fleet path, where the
    /// worker pool computing the references *is* the auditor's own
    /// infrastructure. Records deserialized from an untrusted executor are
    /// a different matter: their producer — the metered platform, exactly
    /// the party this audit distrusts — controls the `reference` field and
    /// could forge a reference that agrees with its own bill. Distrusting
    /// references restores the paper's §VI posture of independent
    /// verification at the cost of one replay per job template.
    pub fn distrust_references(mut self) -> Auditor {
        self.trust_references = false;
        self
    }

    /// Replaces the sampling policy. `fleet_seed` keys the deterministic
    /// probabilistic decisions and must match the fleet's seed so the
    /// workers precompute references for exactly the runs audited here.
    pub fn with_sampling(mut self, policy: SamplingPolicy, fleet_seed: u64) -> Auditor {
        self.sampling = policy;
        self.fleet_seed = fleet_seed;
        self
    }

    /// Demands a valid attestation quote before trusting a record's
    /// precomputed reference (the §III-B posture: a usage report is only
    /// authentic if the TPM-signed quote over it verifies). The verifying
    /// key is derived from `fleet_seed`, matching the key the fleet's
    /// workers sign with ([`crate::Fleet::attestation_key`]).
    ///
    /// A record whose quote is missing, fails verification, or disagrees
    /// with the reported outcome is audited against the auditor's own
    /// inline replay instead, and its verdict carries an
    /// [`Anomaly::QuoteMismatch`].
    pub fn demand_quotes(mut self, fleet_seed: u64) -> Auditor {
        self.attestation = Some(crate::Fleet::attestation_key(fleet_seed));
        self
    }

    /// A snapshot of the auditor's accumulated state (summaries and cost
    /// counters) for checkpointing; see [`AuditorState`].
    pub fn state(&self) -> AuditorState {
        AuditorState {
            summaries: self.summaries.clone(),
            replays: self.replays,
            reference_hits: self.reference_hits,
        }
    }

    /// Replaces the auditor's accumulated state with a snapshot taken via
    /// [`Auditor::state`] (journal recovery from a checkpoint). The
    /// reference memo cache is left untouched: it is a performance memo,
    /// not accounting state.
    pub fn restore(&mut self, state: AuditorState) {
        self.summaries = state.summaries;
        self.replays = state.replays;
        self.reference_hits = state.reference_hits;
    }

    /// The active sampling policy.
    pub fn sampling(&self) -> SamplingPolicy {
        self.sampling
    }

    /// Inline reference replays performed so far (the §VI verification
    /// cost that precomputed references avoid).
    pub fn replay_count(&self) -> u64 {
        self.replays
    }

    /// Records audited with a worker-precomputed reference so far.
    pub fn reference_hit_count(&self) -> u64 {
        self.reference_hits
    }

    /// Overrides the overcharge tolerance.
    ///
    /// # Panics
    /// Panics if `tolerance` is negative or not finite.
    pub fn with_tolerance(mut self, tolerance: f64) -> Auditor {
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "tolerance must be non-negative"
        );
        self.tolerance = tolerance;
        self
    }

    /// The reference outcome for a record: the worker-precomputed
    /// reference when the record carries one, otherwise a clean replay of
    /// the same workload, scale, seed and nice value, memoized. Both paths
    /// are the same deterministic simulation, so the returned reference is
    /// bit-identical either way.
    pub fn reference<'a>(&'a mut self, record: &'a RunRecord) -> &'a ReferenceOutcome {
        // Apply the same attestation gate as `observe`: with quotes
        // demanded, a record whose quote is missing or does not verify
        // gets the inline replay, never the (possibly forged) embedded
        // reference.
        let allow = self.trust_references
            && match (&self.attestation, &record.reference) {
                (Some(key), Some(_)) => Auditor::check_quote(key, record).is_ok(),
                _ => true,
            };
        self.reference_allowing(record, allow)
    }

    /// [`Auditor::reference`] with an explicit decision on whether the
    /// record-embedded reference may be used ([`Auditor::observe`] passes
    /// `false` when a demanded quote failed to verify).
    fn reference_allowing<'a>(
        &'a mut self,
        record: &'a RunRecord,
        allow_precomputed: bool,
    ) -> &'a ReferenceOutcome {
        if allow_precomputed {
            if let Some(reference) = &record.reference {
                self.reference_hits += 1;
                return reference;
            }
        }
        let key: ReferenceKey = (
            record.job.workload.label(),
            record.job.scale.to_bits(),
            record.seed,
            record.job.nice,
        );
        let machine = &self.machine;
        let replays = &mut self.replays;
        self.reference_cache.entry(key).or_insert_with(|| {
            *replays += 1;
            let mut scenario = Scenario::new(record.job.workload, record.job.scale)
                .with_config(machine.clone().with_seed(record.seed));
            scenario.victim_nice = record.job.nice;
            ReferenceOutcome::from_outcome(&scenario.run_clean())
        })
    }

    /// Audits one run, updating the per-tenant summaries. Runs the
    /// sampling policy skips are counted but not verified: their verdict
    /// carries `audited: false`, no anomalies, and a vacuously clean
    /// assessment.
    pub fn observe(&mut self, record: &RunRecord) -> AuditVerdict {
        let freq = self.machine.frequency;
        let tolerance = self.tolerance;
        let outcome = &record.outcome;

        if !self.sampling.should_audit(self.fleet_seed, record.job.id) {
            let summary = self
                .summaries
                .entry(record.job.tenant)
                .or_insert_with(|| TenantAuditSummary::new(record.job.tenant));
            summary.runs += 1;
            summary.skipped_runs += 1;
            // A skipped run asserts nothing: compare the bill against
            // itself so the assessment is well-formed and clean.
            let report = OverchargeReport::compare_with_tolerance(
                outcome.victim_billed,
                outcome.victim_billed,
                freq,
                tolerance,
            );
            let source = SourceIntegrityReport {
                unexpected: Vec::new(),
                missing: Vec::new(),
                pcr_consistent: true,
            };
            return AuditVerdict {
                job: record.job.id,
                tenant: record.job.tenant,
                assessment: TrustAssessment::new(&source, true, report),
                anomalies: Vec::new(),
                audited: false,
            };
        }

        // Attestation gate: when quotes are demanded, the record's quote
        // must verify and match the reported outcome before the embedded
        // reference is trusted; otherwise fall back to an inline replay.
        let quote_issue: Option<String> = match &self.attestation {
            Some(key) if self.trust_references && record.reference.is_some() => {
                Auditor::check_quote(key, record).err()
            }
            _ => None,
        };
        let allow_precomputed = self.trust_references && quote_issue.is_none();

        // Derive everything needed from the memoized reference inside one
        // borrow, so the (large) outcome is never cloned per record.
        let (report, unexpected, missing, witness_expected, pcr_consistent) = {
            let reference = self.reference_allowing(record, allow_precomputed);
            let report = OverchargeReport::compare_with_tolerance(
                outcome.victim_billed,
                reference.victim_truth,
                freq,
                tolerance,
            );
            let unexpected: Vec<String> = outcome
                .unexpected_images(&reference.measured_images)
                .into_iter()
                .map(str::to_string)
                .collect();
            let missing: Vec<String> = reference
                .measured_images
                .iter()
                .filter(|name| !outcome.measured_images.contains(name))
                .cloned()
                .collect();
            // When the closures match exactly, the measurement PCR must
            // match the reference replay's; a diverging closure diverges in
            // PCR by construction, which the unexpected/missing lists
            // already capture.
            let images_match = reference.measured_images == outcome.measured_images;
            let pcr_consistent =
                !images_match || outcome.measurement_pcr == reference.measurement_pcr;
            (
                report,
                unexpected,
                missing,
                reference.witness_digest,
                pcr_consistent,
            )
        };
        let witness_matches = outcome.witness_digest == witness_expected;

        let source = SourceIntegrityReport {
            unexpected: unexpected
                .iter()
                .map(|name| MeasuredImage::new(name.clone(), ImageKind::ShellInjected))
                .collect(),
            missing: missing.clone(),
            pcr_consistent,
        };
        let assessment = TrustAssessment::new(&source, witness_matches, report);

        let mut anomalies = Vec::new();
        if report.verdict == Verdict::Overcharged {
            anomalies.push(Anomaly::Overbilled(report));
        }
        if !unexpected.is_empty() {
            anomalies.push(Anomaly::UnexpectedImages(unexpected));
        }
        if !missing.is_empty() || !pcr_consistent {
            anomalies.push(Anomaly::MeasurementMismatch {
                missing,
                pcr_consistent,
            });
        }
        if !witness_matches {
            anomalies.push(Anomaly::WitnessMismatch {
                expected: witness_expected,
                observed: outcome.witness_digest,
            });
        }
        if outcome.hit_horizon {
            anomalies.push(Anomaly::HorizonHit);
        }
        if let Some(reason) = quote_issue {
            anomalies.push(Anomaly::QuoteMismatch { reason });
        }

        let summary = self
            .summaries
            .entry(record.job.tenant)
            .or_insert_with(|| TenantAuditSummary::new(record.job.tenant));
        summary.runs += 1;
        if !anomalies.is_empty() {
            summary.flagged_runs += 1;
        }
        for anomaly in &anomalies {
            *summary
                .anomaly_counts
                .entry(anomaly.kind().to_string())
                .or_insert(0) += 1;
            if let Anomaly::Overbilled(report) = anomaly {
                summary.overcharge_secs += report.overcharge_secs;
            }
        }

        AuditVerdict {
            job: record.job.id,
            tenant: record.job.tenant,
            assessment,
            anomalies,
            audited: true,
        }
    }

    /// Whether `record`'s quote verifies under `key` and matches the
    /// outcome the record reports. The nonce challenge is
    /// [`crate::executor::quote_nonce`] — the job id bound to a
    /// commitment over the precomputed reference — so editing the
    /// embedded reference after the fact surfaces as a nonce mismatch.
    fn check_quote(key: &AttestationKey, record: &RunRecord) -> Result<(), String> {
        let Some(quote) = &record.quote else {
            return Err("missing".to_string());
        };
        let reference = record
            .reference
            .as_ref()
            .expect("quote gate only runs with an embedded reference");
        let nonce = crate::executor::quote_nonce(record.job.id, reference);
        key.verify(quote, nonce).map_err(|e| {
            match e {
                QuoteError::BadSignature => "bad-signature",
                QuoteError::NonceMismatch => "nonce-mismatch",
            }
            .to_string()
        })?;
        let outcome = &record.outcome;
        if quote.measurement_pcr != outcome.measurement_pcr
            || quote.witness_digest != outcome.witness_digest
            || quote.usage != outcome.victim_billed
        {
            return Err("outcome-mismatch".to_string());
        }
        Ok(())
    }

    /// The accumulated summary for one tenant.
    pub fn summary(&self, tenant: TenantId) -> Option<&TenantAuditSummary> {
        self.summaries.get(&tenant)
    }

    /// Iterates summaries in tenant-id order.
    pub fn summaries(&self) -> impl Iterator<Item = &TenantAuditSummary> {
        self.summaries.values()
    }

    /// Number of memoized reference replays (for cache diagnostics).
    pub fn reference_cache_len(&self) -> usize {
        self.reference_cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{AttackSpec, Fleet, FleetConfig, JobSpec};
    use trustmeter_workloads::Workload;

    const SCALE: f64 = 0.002;

    fn fleet() -> Fleet {
        Fleet::new(FleetConfig::new(1, 1234))
    }

    #[test]
    fn clean_run_audits_clean() {
        let fleet = fleet();
        let job = JobSpec::clean(0, TenantId(1), Workload::LoopO, SCALE);
        let record = fleet.run_one(&job);
        let mut auditor = Auditor::new(fleet.config().machine.clone());
        let verdict = auditor.observe(&record);
        assert!(verdict.is_clean(), "anomalies: {:?}", verdict.anomalies);
        assert!(verdict.assessment.is_trustworthy());
        let summary = auditor.summary(TenantId(1)).unwrap();
        assert_eq!(summary.runs, 1);
        assert_eq!(summary.flagged_runs, 0);
    }

    #[test]
    fn shell_attack_is_flagged_with_injected_image() {
        let fleet = fleet();
        let job = JobSpec::attacked(0, TenantId(2), Workload::LoopO, SCALE, AttackSpec::Shell);
        let record = fleet.run_one(&job);
        let mut auditor = Auditor::new(fleet.config().machine.clone());
        let verdict = auditor.observe(&record);
        assert!(!verdict.is_clean());
        assert!(!verdict.assessment.source_integrity);
        let kinds: Vec<&str> = verdict.anomalies.iter().map(Anomaly::kind).collect();
        assert!(kinds.contains(&"overbilled"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"unexpected-images"), "kinds: {kinds:?}");
        let summary = auditor.summary(TenantId(2)).unwrap();
        assert_eq!(summary.flagged_runs, 1);
        assert!(summary.overcharge_secs > 0.0);
    }

    #[test]
    fn scheduling_attack_overbills_without_touching_integrity() {
        let fleet = fleet();
        let job = JobSpec::attacked(
            0,
            TenantId(3),
            Workload::Whetstone,
            SCALE,
            AttackSpec::Scheduling { nice: -10 },
        );
        let record = fleet.run_one(&job);
        let mut auditor = Auditor::new(fleet.config().machine.clone());
        let verdict = auditor.observe(&record);
        let kinds: Vec<&str> = verdict.anomalies.iter().map(Anomaly::kind).collect();
        assert!(kinds.contains(&"overbilled"), "kinds: {kinds:?}");
        assert!(!kinds.contains(&"unexpected-images"), "kinds: {kinds:?}");
    }

    #[test]
    fn tampered_measurement_log_is_flagged() {
        let fleet = fleet();
        let job = JobSpec::clean(0, TenantId(4), Workload::LoopO, SCALE);
        let mut record = fleet.run_one(&job);
        // A forged report that drops an image the reference loaded.
        let dropped = record.outcome.measured_images.pop().expect("image present");
        let mut auditor = Auditor::new(fleet.config().machine.clone());
        let verdict = auditor.observe(&record);
        match verdict.anomalies.as_slice() {
            [Anomaly::MeasurementMismatch {
                missing,
                pcr_consistent,
            }] => {
                assert_eq!(missing, &vec![dropped]);
                assert!(
                    pcr_consistent,
                    "closure differs, so PCR divergence is expected"
                );
            }
            other => panic!("expected a single measurement mismatch, got {other:?}"),
        }
        assert!(!verdict.assessment.source_integrity);
    }

    #[test]
    fn forged_pcr_with_matching_closure_is_flagged() {
        let fleet = fleet();
        let job = JobSpec::clean(0, TenantId(5), Workload::LoopO, SCALE);
        let mut record = fleet.run_one(&job);
        // Same image list, different PCR: a tampered measurement log.
        record.outcome.measurement_pcr = trustmeter_core::Digest::of(b"forged");
        let mut auditor = Auditor::new(fleet.config().machine.clone());
        let verdict = auditor.observe(&record);
        let kinds: Vec<&str> = verdict.anomalies.iter().map(Anomaly::kind).collect();
        assert!(kinds.contains(&"measurement-mismatch"), "kinds: {kinds:?}");
        assert!(!verdict.assessment.source_integrity);
    }

    #[test]
    fn reference_cache_is_shared_across_same_template_jobs() {
        let fleet = fleet();
        let mut auditor = Auditor::new(fleet.config().machine.clone());
        // Strip the precomputed references to exercise the inline-replay
        // fallback: same template and id → same derived seed → one replay.
        for tenant in [TenantId(1), TenantId(2)] {
            let job = JobSpec::clean(9, tenant, Workload::Pi, SCALE);
            let mut record = fleet.run_one(&job);
            record.reference = None;
            auditor.observe(&record);
        }
        assert_eq!(auditor.reference_cache_len(), 1);
        assert_eq!(auditor.replay_count(), 1);
        assert_eq!(auditor.reference_hit_count(), 0);
    }

    #[test]
    fn precomputed_reference_skips_the_inline_replay() {
        let fleet = fleet();
        let mut auditor = Auditor::new(fleet.config().machine.clone());
        let job = JobSpec::attacked(3, TenantId(1), Workload::LoopO, SCALE, AttackSpec::Shell);
        let record = fleet.run_one(&job);
        assert!(record.reference.is_some(), "Always policy precomputes");
        let verdict = auditor.observe(&record);
        assert!(!verdict.is_clean());
        assert!(verdict.audited);
        assert_eq!(auditor.replay_count(), 0);
        assert_eq!(auditor.reference_hit_count(), 1);
        assert_eq!(auditor.reference_cache_len(), 0);
    }

    #[test]
    fn precomputed_and_inline_references_agree_bit_for_bit() {
        let fleet = fleet();
        let job = JobSpec::attacked(5, TenantId(1), Workload::LoopO, SCALE, AttackSpec::Shell);
        let record = fleet.run_one(&job);
        let precomputed = record.reference.clone().expect("reference precomputed");
        let mut stripped = record.clone();
        stripped.reference = None;
        let mut auditor = Auditor::new(fleet.config().machine.clone());
        let inline = auditor.reference(&stripped).clone();
        assert_eq!(precomputed, inline);
        assert_eq!(auditor.replay_count(), 1);
    }

    #[test]
    fn distrusting_references_catches_a_forged_reference() {
        let fleet = fleet();
        let job = JobSpec::attacked(4, TenantId(6), Workload::LoopO, SCALE, AttackSpec::Shell);
        let mut record = fleet.run_one(&job);
        // The dishonest platform forges a reference that agrees with its
        // own inflated bill and tampered closure.
        record.reference = Some(ReferenceOutcome {
            victim_truth: record.outcome.victim_billed,
            measured_images: record.outcome.measured_images.clone(),
            measurement_pcr: record.outcome.measurement_pcr,
            witness_digest: record.outcome.witness_digest,
        });
        // A trusting auditor is deceived...
        let mut trusting = Auditor::new(fleet.config().machine.clone());
        assert!(trusting.observe(&record).is_clean());
        // ...a distrusting one replays independently and flags the attack.
        let mut distrusting = Auditor::new(fleet.config().machine.clone()).distrust_references();
        let verdict = distrusting.observe(&record);
        assert!(!verdict.is_clean());
        let kinds: Vec<&str> = verdict.anomalies.iter().map(Anomaly::kind).collect();
        assert!(kinds.contains(&"overbilled"), "kinds: {kinds:?}");
        assert_eq!(distrusting.replay_count(), 1);
        assert_eq!(distrusting.reference_hit_count(), 0);
    }

    #[test]
    fn quote_demanding_auditor_accepts_fleet_signed_records() {
        let fleet = fleet();
        let job = JobSpec::clean(0, TenantId(1), Workload::LoopO, SCALE);
        let record = fleet.run_one(&job);
        assert!(record.quote.is_some(), "sampled runs carry a quote");
        let mut auditor = Auditor::new(fleet.config().machine.clone()).demand_quotes(1234);
        let verdict = auditor.observe(&record);
        assert!(verdict.is_clean(), "anomalies: {:?}", verdict.anomalies);
        assert_eq!(auditor.reference_hit_count(), 1, "reference was trusted");
        assert_eq!(auditor.replay_count(), 0);
    }

    #[test]
    fn missing_quote_is_flagged_and_falls_back_to_inline_replay() {
        let fleet = fleet();
        let job = JobSpec::clean(0, TenantId(1), Workload::LoopO, SCALE);
        let mut record = fleet.run_one(&job);
        record.quote = None;
        let mut auditor = Auditor::new(fleet.config().machine.clone()).demand_quotes(1234);
        let verdict = auditor.observe(&record);
        match verdict.anomalies.as_slice() {
            [Anomaly::QuoteMismatch { reason }] => assert_eq!(reason, "missing"),
            other => panic!("expected a quote mismatch, got {other:?}"),
        }
        // The reference was not trusted: the auditor replayed inline.
        assert_eq!(auditor.reference_hit_count(), 0);
        assert_eq!(auditor.replay_count(), 1);
    }

    #[test]
    fn tampered_outcome_breaks_the_quote_and_the_replay_catches_it() {
        // The record's bill is inflated after execution (e.g. a tampered
        // journal). The quote no longer matches the reported usage, so the
        // embedded reference is distrusted and the inline replay flags the
        // overbilling that the forged record would otherwise hide.
        let fleet = fleet();
        let job = JobSpec::clean(7, TenantId(2), Workload::LoopO, SCALE);
        let mut record = fleet.run_one(&job);
        record.outcome.victim_billed.utime =
            trustmeter_sim::Cycles(record.outcome.victim_billed.utime.as_u64() * 2);
        // A naive forger also fixes up the embedded reference to agree.
        record.reference = Some(ReferenceOutcome {
            victim_truth: record.outcome.victim_billed,
            ..record.reference.clone().unwrap()
        });
        let mut auditor = Auditor::new(fleet.config().machine.clone()).demand_quotes(1234);
        let verdict = auditor.observe(&record);
        let kinds: Vec<&str> = verdict.anomalies.iter().map(Anomaly::kind).collect();
        assert!(kinds.contains(&"quote-mismatch"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"overbilled"), "kinds: {kinds:?}");
        // Without quote demands the forged reference deceives the auditor
        // into seeing a consistent bill.
        let mut naive = Auditor::new(fleet.config().machine.clone());
        let kinds: Vec<&str> = naive
            .observe(&record)
            .anomalies
            .iter()
            .map(Anomaly::kind)
            .collect();
        assert!(!kinds.contains(&"overbilled"), "kinds: {kinds:?}");
    }

    #[test]
    fn tampered_reference_breaks_the_quote_nonce() {
        // The attacker leaves the outcome alone but forges the embedded
        // clean reference up to the attacked bill, hiding the overcharge.
        // The quote nonce commits to the reference, so verification fails
        // with a nonce mismatch, and the auditor's own inline replay still
        // flags the overbilling.
        let fleet = fleet();
        let job = JobSpec::attacked(11, TenantId(3), Workload::LoopO, SCALE, AttackSpec::Shell);
        let mut record = fleet.run_one(&job);
        record.reference.as_mut().unwrap().victim_truth = record.outcome.victim_billed;
        let mut auditor = Auditor::new(fleet.config().machine.clone()).demand_quotes(1234);
        let verdict = auditor.observe(&record);
        let reasons: Vec<&str> = verdict
            .anomalies
            .iter()
            .filter_map(|a| match a {
                Anomaly::QuoteMismatch { reason } => Some(reason.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(reasons, ["nonce-mismatch"]);
        let kinds: Vec<&str> = verdict.anomalies.iter().map(Anomaly::kind).collect();
        assert!(kinds.contains(&"overbilled"), "kinds: {kinds:?}");
        assert_eq!(auditor.replay_count(), 1, "fell back to the inline replay");
        assert_eq!(auditor.reference_hit_count(), 0);

        // The public reference() accessor applies the same gate: it never
        // hands back the forged embedded reference.
        let mut fresh = Auditor::new(fleet.config().machine.clone()).demand_quotes(1234);
        let reference = fresh.reference(&record).clone();
        assert_ne!(
            reference.victim_truth, record.outcome.victim_billed,
            "the forged truth must not be returned"
        );
        assert_eq!(fresh.replay_count(), 1);
        assert_eq!(fresh.reference_hit_count(), 0);
    }

    #[test]
    fn wrong_key_quote_is_a_bad_signature() {
        let fleet = fleet();
        let record = fleet.run_one(&JobSpec::clean(3, TenantId(1), Workload::LoopO, SCALE));
        // Verifier derives its key from a different fleet seed.
        let mut auditor = Auditor::new(fleet.config().machine.clone()).demand_quotes(9999);
        let verdict = auditor.observe(&record);
        match verdict.anomalies.as_slice() {
            [Anomaly::QuoteMismatch { reason }] => assert_eq!(reason, "bad-signature"),
            other => panic!("expected a quote mismatch, got {other:?}"),
        }
    }

    #[test]
    fn auditor_state_snapshot_round_trips() {
        let fleet = fleet();
        let mut auditor = Auditor::new(fleet.config().machine.clone());
        auditor.observe(&fleet.run_one(&JobSpec::attacked(
            0,
            TenantId(1),
            Workload::LoopO,
            SCALE,
            AttackSpec::Shell,
        )));
        let state = auditor.state();
        assert_eq!(state.summaries[&TenantId(1)].flagged_runs, 1);
        let mut restored = Auditor::new(fleet.config().machine.clone());
        restored.restore(state.clone());
        assert_eq!(restored.state(), state);
        assert_eq!(restored.summary(TenantId(1)).unwrap().flagged_runs, 1);
    }

    #[test]
    fn sampling_policy_skips_are_counted_and_vacuously_clean() {
        // EveryNth(2): even job ids audited, odd skipped.
        let config = FleetConfig::new(1, 1234).with_sampling(SamplingPolicy::EveryNth(2));
        let fleet = Fleet::new(config);
        let mut auditor = Auditor::new(fleet.config().machine.clone())
            .with_sampling(SamplingPolicy::EveryNth(2), 1234);
        // An attacked run with an odd id is skipped: no anomaly raised.
        let skipped_job =
            JobSpec::attacked(1, TenantId(1), Workload::LoopO, SCALE, AttackSpec::Shell);
        let skipped_record = fleet.run_one(&skipped_job);
        assert!(skipped_record.reference.is_none(), "no reference for skips");
        let verdict = auditor.observe(&skipped_record);
        assert!(!verdict.audited);
        assert!(verdict.is_clean());
        assert!(verdict.assessment.is_trustworthy());
        // The same attack with an even id is caught.
        let audited_job =
            JobSpec::attacked(2, TenantId(1), Workload::LoopO, SCALE, AttackSpec::Shell);
        let verdict = auditor.observe(&fleet.run_one(&audited_job));
        assert!(verdict.audited);
        assert!(!verdict.is_clean());
        let summary = auditor.summary(TenantId(1)).unwrap();
        assert_eq!(summary.runs, 2);
        assert_eq!(summary.skipped_runs, 1);
        assert_eq!(summary.flagged_runs, 1);
        assert_eq!(auditor.replay_count(), 0, "audited run had a reference");
    }
}
