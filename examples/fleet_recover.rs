//! Crash recovery, segmented: kill a journaled stream mid-flight, then
//! prove the recovered service is bit-identical to a clean batch run of
//! everything the journal released.
//!
//! The demo walks the whole group-commit durability story:
//!
//! 1. a [`FleetService`] with a **segmented** write-ahead [`Journal`]
//!    (tiny segments so rotation is visible, a checkpoint cadence so
//!    retirement fires, a group-commit fsync policy) streams a 36-job,
//!    3-tenant batch through a worker pool; the release path commits each
//!    ready prefix as one batched journal write;
//! 2. mid-stream, the cadence writes inline `Checkpoint` entries — each
//!    one starts a fresh segment and **deletes** the segments it
//!    supersedes, so the directory never grows without bound;
//! 3. the stream is dropped mid-flight — the "kill". Unreleased work is
//!    discarded: it was never journaled, so it was never billed;
//! 4. a torn half-line is appended to the last segment, the artifact a
//!    crash mid-append leaves behind (a torn tail is only legal there —
//!    sealed segments must parse cleanly);
//! 5. a fresh service (same config, same tenants — what a restarted
//!    process would build) reopens the directory (repairing the torn
//!    tail) and replays it with [`FleetService::recover_latest`]: the
//!    leading checkpoint seeds the state, the post-checkpoint tail
//!    replays, every journaled receipt is cross-checked, and the
//!    recovered ledger/audit/metering state equals a clean batch run over
//!    the released prefix — byte for byte on the metering exposition.
//!
//! ```text
//! cargo run --release --example fleet_recover
//! ```

use trustmeter::prelude::*;

const SCALE: f64 = 0.002;
const JOBS: u64 = 36;
const SEED: u64 = 0xD15C;

fn jobs() -> Vec<JobSpec> {
    (0..JOBS)
        .map(|id| {
            let tenant = TenantId((id % 3) as u32 + 1);
            let workload = Workload::ALL[(id % 4) as usize];
            if tenant.0 == 2 {
                JobSpec::attacked(id, tenant, workload, SCALE, AttackSpec::Shell)
            } else {
                JobSpec::clean(id, tenant, workload, SCALE)
            }
        })
        .collect()
}

/// A service configured the way both the original process and the
/// restarted one would configure it.
fn build_service(journal: Option<Journal>) -> FleetService {
    let mut service = FleetService::new(FleetConfig::new(4, SEED));
    service.register(Tenant::new(
        TenantId(1),
        "acme",
        RateCard::per_cpu_hour(0.10),
    ));
    service.register(Tenant::new(
        TenantId(2),
        "shelled-inc",
        RateCard::per_cpu_hour(0.10),
    ));
    service.register(Tenant::new(
        TenantId(3),
        "initech",
        RateCard::per_cpu_hour(0.12),
    ));
    match journal {
        Some(journal) => service
            .with_journal(journal)
            .with_checkpoint_cadence(CheckpointCadence::every_n_runs(16)),
        None => service,
    }
}

fn segment_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("read segment dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    files.sort();
    files
}

fn main() {
    let dir = std::env::temp_dir().join(format!("trustmeter-fleet-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // 8 KiB segments rotate many times over this batch; the group-commit
    // policy fsyncs once per 64 entries / 256 KiB of backlog.
    let config = SegmentConfig::default()
        .with_segment_bytes(8 * 1024)
        .with_fsync(FsyncPolicy::GroupCommit {
            max_entries: 64,
            max_bytes: 256 * 1024,
        });

    // ---- 1. Stream with a segmented write-ahead journal -----------------
    let journal = Journal::segmented(&dir, config).expect("open segment dir");
    let mut service = build_service(Some(journal.clone()));
    let mut stream = service.stream(IngestConfig::new(4).with_completion_watermark(8));
    for job in jobs() {
        stream.submit(job).expect("pipeline accepts until finish");
    }
    // Pump until at least two thirds of the batch is posted...
    while stream.verdicts().len() < (JOBS as usize) * 2 / 3 {
        stream.pump();
        std::thread::yield_now();
    }
    let posted = stream.verdicts().len();
    let stats = journal.stats();
    println!(
        "streamed {posted}/{JOBS} jobs: {} entries in {} group commits, \
         {} rotations, {} segments retired, {} fsyncs, then...",
        stats.appends, stats.group_commits, stats.rotations, stats.segments_retired, stats.fsyncs
    );
    assert!(stats.rotations > 0, "tiny segments must have rotated");
    assert!(
        stats.segments_retired > 0,
        "the checkpoint cadence must have retired history"
    );

    // ---- 2. ...the crash ------------------------------------------------
    drop(stream);
    drop(service);
    println!("  *** killed the stream mid-flight ***");

    // ---- 3. A torn final line in the LAST segment -----------------------
    {
        use std::io::Write as _;
        let segments = segment_files(&dir);
        println!("{} live segments on disk after the kill", segments.len());
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(segments.last().expect("at least one segment"))
            .expect("reopen last segment");
        file.write_all(br#"{"Run":{"job":{"id":999"#)
            .expect("append torn line");
    }

    // ---- 4. Recovery ----------------------------------------------------
    // Reopening the directory repairs the torn tail (only the last
    // segment may legally be torn), and the live directory leads with the
    // newest checkpoint — older segments were already deleted.
    let journal = Journal::segmented(&dir, config).expect("reopen segment dir");
    let (entries, tail) = journal.entries().expect("parse segment dir");
    assert!(!tail.is_truncated(), "reopening repaired the torn tail");
    assert_eq!(entries[0].label(), "checkpoint", "checkpoint leads");
    let mut recovered = build_service(None);
    let report = recovered.recover_latest(&entries).expect("replay journal");
    assert!(report.is_consistent(), "no receipt was tampered with");
    let released = (report.checkpoint_runs + report.runs_replayed) as usize;
    println!(
        "recovered {released} runs ({} from the checkpoint, {} replayed, \
         {} receipts cross-checked)",
        report.checkpoint_runs, report.runs_replayed, report.postings_confirmed
    );

    // The released records form a submission-order prefix, so the ground
    // truth is a clean batch run over the first `released` jobs.
    let mut baseline = build_service(None);
    let baseline_report = baseline.process(&jobs()[..released]);
    assert_eq!(
        recovered.ledger(),
        &baseline_report.ledger,
        "recovered ledger == clean batch ledger"
    );
    assert_eq!(
        metering_exposition(&recovered.metrics_text()),
        metering_exposition(&baseline.metrics_text()),
        "recovered metering exposition == clean batch exposition"
    );
    for account in recovered.ledger().iter() {
        println!("  {account}");
    }
    println!("recovered state is bit-identical to a clean run of the released prefix\n");

    // ---- 5. Offline compaction still composes ---------------------------
    // The recovery window (checkpoint + tail) can be folded further with
    // `compact`, exactly like the single-file journal.
    let window = recovery_window(&entries);
    let fold = report.runs_replayed as usize / 2;
    let mut scratch = build_service(None);
    let compacted = compact(window, fold, &mut scratch).expect("compact window");
    println!(
        "compacted the {}-entry window into a checkpoint + {} tail entries",
        window.len(),
        compacted.len() - 1
    );
    let mut from_checkpoint = build_service(None);
    from_checkpoint
        .recover(&compacted)
        .expect("replay compacted journal");
    assert_eq!(
        from_checkpoint.ledger(),
        &baseline_report.ledger,
        "recovery from the compacted journal is unchanged"
    );
    assert_eq!(
        metering_exposition(&from_checkpoint.metrics_text()),
        metering_exposition(&baseline.metrics_text()),
        "compact-then-recover preserves the metering exposition too"
    );
    println!("recovery from the compacted journal reproduces the same state");

    let _ = std::fs::remove_dir_all(&dir);
}
