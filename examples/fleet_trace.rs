//! Metering the meter: pipeline span tracing, stage latency histograms,
//! and observation-overhead accounting.
//!
//! The fleet bills tenants for CPU time — so the observability layer that
//! watches the fleet must itself be accounted for, and must never perturb
//! what it observes. This demo:
//!
//! 1. streams a 48-job, 3-tenant batch through a [`FleetService`] with a
//!    [`PipelineTracer`] attached: every stage boundary — queue wait,
//!    execution, audit, journal commit, release→post — becomes a span in
//!    a bounded ring and a sample in the `fleet_stage_seconds` histograms;
//! 2. reads per-stage p50/p99 latency straight off the metrics registry
//!    (`histogram_quantile`), the same numbers a Prometheus scrape of
//!    `fleet_stage_seconds_bucket` would yield;
//! 3. prints the observer's own bill — spans recorded, spans dropped by
//!    the ring bound, and `fleet_observer_overhead_seconds_total`, the
//!    time spent inside the observability layer itself;
//! 4. exports the span ring as JSON lines. Span *identity* (id, job,
//!    tenant, stage) is derived from the fleet seed, so it is stable
//!    across runs and worker counts; wall-clock data is segregated under
//!    the `wall` key, so a consumer that strips it gets a deterministic
//!    artifact;
//! 5. replays the identical batch untraced and proves the metering
//!    exposition — the surface billing consumers read — is byte-identical
//!    with tracing on or off.
//!
//! ```text
//! cargo run --release --example fleet_trace
//! ```

use trustmeter::prelude::*;

const SCALE: f64 = 0.002;
const SEED: u64 = 0x0B5E12;
const JOBS: u64 = 48;

fn jobs() -> Vec<JobSpec> {
    (0..JOBS)
        .map(|id| {
            let tenant = TenantId((id % 3) as u32 + 1);
            let workload = Workload::ALL[(id % 4) as usize];
            if tenant.0 == 2 && id % 4 == 0 {
                JobSpec::attacked(id, tenant, workload, SCALE, AttackSpec::Shell)
            } else {
                JobSpec::clean(id, tenant, workload, SCALE)
            }
        })
        .collect()
}

fn build_service() -> FleetService {
    let mut service = FleetService::new(FleetConfig::new(4, SEED));
    for (id, name, rate) in [
        (1, "acme", 0.10),
        (2, "shelled-inc", 0.10),
        (3, "initech", 0.12),
    ] {
        service.register(Tenant::new(
            TenantId(id),
            name,
            RateCard::per_cpu_hour(rate),
        ));
    }
    service
}

fn stream(service: &mut FleetService) -> FleetReport {
    let mut stream = service.stream(IngestConfig::new(4));
    for job in jobs() {
        stream.submit(job).expect("queue sized for batch");
        stream.pump();
    }
    stream.finish()
}

fn main() {
    // ---- 1. A traced streaming run --------------------------------------
    let tracer = PipelineTracer::new(4 * JOBS as usize, SEED);
    let mut service = build_service().with_tracer(tracer.clone());
    let report = stream(&mut service);
    println!(
        "streamed {} jobs across 3 tenants with the tracer attached",
        report.records.len()
    );

    // ---- 2. Per-stage latency, straight off the histograms --------------
    println!("\nstage latency (from fleet_stage_seconds):");
    let metrics = service.metrics();
    for stage in Stage::ALL {
        let labels = [("stage", stage.label())];
        let count = metrics
            .histogram_count("fleet_stage_seconds", &labels)
            .unwrap_or(0);
        if count == 0 {
            // No journal attached in this demo, so no journal-commit spans.
            println!("  {:>14}: (no samples)", stage.label());
            continue;
        }
        let quantile = |q: f64| {
            metrics
                .histogram_quantile("fleet_stage_seconds", &labels, q)
                .expect("non-empty histogram")
        };
        println!(
            "  {:>14}: {count:3} spans, p50 {:8.1} µs, p99 {:8.1} µs",
            stage.label(),
            quantile(0.5) * 1e6,
            quantile(0.99) * 1e6,
        );
    }

    // ---- 3. The observer's own bill --------------------------------------
    let stats = tracer.stats();
    println!(
        "\nobserver self-accounting: {} spans recorded, {} dropped by the \
         ring bound, {:.3} ms spent observing",
        stats.spans_recorded,
        stats.spans_dropped,
        stats.overhead_nanos as f64 / 1e6
    );
    let text = service.metrics_text();
    for line in text.lines().filter(|l| l.starts_with("fleet_observer_")) {
        println!("  {line}");
    }

    // ---- 4. Export the span ring as JSON lines ---------------------------
    let mut jsonl = Vec::new();
    tracer.export_jsonl(&mut jsonl).expect("write to memory");
    let jsonl = String::from_utf8(jsonl).expect("spans are utf-8");
    println!(
        "\nexported {} spans as JSON lines; the first two:",
        jsonl.lines().count()
    );
    for line in jsonl.lines().take(2) {
        println!("  {line}");
    }
    // Span identity is seeded: the execute span of job 0 has the same id
    // in every run of this example, on any machine.
    let expected = span_id(SEED, JobId(0), Stage::Execute);
    assert!(
        jsonl.contains(&format!("\"id\":{expected}")),
        "seeded span id must appear in the export"
    );
    println!("  (span ids are seeded: job 0 execute = {expected} every run)");

    // ---- 5. Tracing never perturbs the metering --------------------------
    let mut untraced = build_service();
    let untraced_report = stream(&mut untraced);
    assert_eq!(
        report, untraced_report,
        "ledger and verdicts must be bit-identical with tracing on or off"
    );
    assert_eq!(
        metering_exposition(&text),
        metering_exposition(&untraced.metrics_text()),
        "metering exposition must be byte-identical with tracing on or off"
    );
    println!(
        "\nreplayed untraced: ledger, verdicts and metering exposition are \
         byte-identical — observing the pipeline costs time, never accuracy"
    );
}
